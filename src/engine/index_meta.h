// Index metadata sidecar shared by `rtb_cli build` and the engine's
// open-an-existing-index path. An index file FILE is accompanied by a
// FILE.meta text sidecar holding what a FilePageStore cannot reconstruct:
// "rtb-index <root-page> <height> <fanout>".

#ifndef RTB_ENGINE_INDEX_META_H_
#define RTB_ENGINE_INDEX_META_H_

#include <cstdint>
#include <string>

#include "storage/page.h"
#include "util/result.h"

namespace rtb::engine {

struct IndexMeta {
  storage::PageId root = 0;
  uint16_t height = 0;
  uint32_t fanout = 0;
};

/// Writes `index_path`.meta.
Status SaveIndexMeta(const std::string& index_path, const IndexMeta& meta);

/// Reads `index_path`.meta.
Result<IndexMeta> LoadIndexMeta(const std::string& index_path);

}  // namespace rtb::engine

#endif  // RTB_ENGINE_INDEX_META_H_
