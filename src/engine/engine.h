// The experiment engine: executes a declarative ExperimentSpec end to end —
// build (or open) the tree, construct the buffer pool, pin the top levels,
// warm up, measure every query class — through the one unified workload
// executor (sim/runner.h), and evaluates the paper's analytic cost model
// for the same spec so measured and predicted disk accesses land in a
// single report.
//
// Serial specs (threads == 1, shards == 0) run the paper's bit-reproducible
// configuration: the counters in the report are byte-identical to a hand
//-written serial RunWorkload over the same tree and seed (pinned by
// tests/engine_test.cc). Parallel specs keep per-worker determinism via RNG
// substreams.
//
//   auto spec = ExperimentSpec::FromJsonFile("spec.json");
//   auto report = engine::Run(*spec);
//   std::puts(report->ToJsonString().c_str());

#ifndef RTB_ENGINE_ENGINE_H_
#define RTB_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/index_meta.h"
#include "engine/spec.h"
#include "model/access_prob.h"
#include "report/json.h"
#include "rtree/summary.h"
#include "sim/runner.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::engine {

/// Version of the JSON document RunReport::ToJsonDict emits. Bump on any
/// incompatible schema change.
inline constexpr uint64_t kRunReportSchemaVersion = 1;

/// A tree materialized for a spec: the page store (in-memory for built
/// trees unless storage.backend is "file"; file-backed for opened indexes),
/// its summary, and — when any query class is data-driven — the data
/// rectangle centers.
struct PreparedTree {
  std::unique_ptr<storage::PageStore> store;
  std::unique_ptr<rtree::TreeSummary> summary;
  /// Shared with the query generators (sim::GeneratorContext), so a
  /// generator built from this tree stays valid even if the PreparedTree
  /// is torn down or rebuilt mid-run. Null when no class needs centers.
  std::shared_ptr<const std::vector<geom::Point>> centers;
  /// The build rectangles, kept only when a mixed update class needs them
  /// to seed its delete-victim ledger (object ids are their indexes).
  std::vector<geom::Rect> rects;
  IndexMeta meta;
  double build_seconds = 0.0;  // Dataset generation + bulk load (0 on open).
};

/// Builds the spec's dataset into an in-memory tree, or opens
/// spec.tree.index when set. Store counters are reset, so subsequent reads
/// are all query traffic.
Result<PreparedTree> PrepareTree(const ExperimentSpec& spec);

/// Analytic prediction for one query class under a pool configuration.
struct ModelEstimate {
  double node_accesses = 0.0;  // Bufferless nodes per query.
  double disk_accesses = 0.0;  // LRU buffer model (pinned variant if set).
  double disk_accesses_continuous = 0.0;  // Real-valued N* refinement.
  bool feasible = true;        // False: pinned levels exceed the buffer.
  uint64_t pinned_pages = 0;
  /// Batched-executor model (batch_size >= 2, no pinning): Eq. 5-6 at
  /// batch granularity (model::ExpectedBatchedDiskAccesses).
  bool batched = false;
  double batched_disk_accesses = 0.0;  // Per query, within-batch collapse.
  double effective_hit_rate = 0.0;     // Predicted 1 - disk/EP.
};

/// Evaluates the cost model for `qspec` against `summary` under `pool`
/// (buffer size and pinned levels). `centers` is required for data-driven
/// specs. `batch_size >= 2` additionally evaluates the batched-executor
/// model (when no levels are pinned).
Result<ModelEstimate> EvaluateModel(const rtree::TreeSummary& summary,
                                    const model::QuerySpec& qspec,
                                    const PoolSpec& pool,
                                    const std::vector<geom::Point>* centers =
                                        nullptr,
                                    uint64_t batch_size = 1);

/// Measured (and optionally predicted) results of one query class.
struct ClassReport {
  std::string label;
  model::QuerySpec qspec;
  sim::WorkloadResult run;
  bool model_evaluated = false;
  ModelEstimate predicted;  // Valid when model_evaluated.
  /// Mixed update classes only: the pool was flushed and the tree
  /// structurally validated after the measured phase (Run fails otherwise,
  /// so a reported mixed class always has this set).
  bool validated = false;
};

/// Everything a run produced: tree shape, phase wall-times, buffer-pool and
/// store counters, per-class measured-vs-predicted results.
struct RunReport {
  ExperimentSpec spec;

  // Tree shape.
  uint16_t height = 0;
  uint64_t num_nodes = 0;
  uint64_t data_entries = 0;

  // Phase wall-times (seconds).
  double build_seconds = 0.0;
  double pin_seconds = 0.0;
  double warmup_seconds = 0.0;
  double measure_seconds = 0.0;

  uint64_t pinned_pages = 0;
  storage::BufferStats buffer;  // Merged pool counters, warm-up included.
  storage::IoStats store_io;    // Store counters over the whole run.
  bool async_active = false;        // Reads routed via the async engine.
  storage::AsyncIoStats async_io;   // Engine counters over the whole run.
  bool wal_active = false;          // Updates logged through a WAL; the
                                    // wal_* counters in store_io are live.

  sim::WorkloadResult total;    // Counters summed over all classes.
  std::vector<ClassReport> classes;

  /// The report as a JSON object:
  ///   {"report": "rtb-run", "schema_version": 1, "name": ..., "spec": {...},
  ///    "tree": {...}, "phases": {...}, "pool": {...}, "store": {...},
  ///    "totals": {...}, "classes": [{..., "predicted": {...}}, ...]}
  report::JsonDict ToJsonDict() const;

  /// ToJsonDict() rendered as a document (with trailing newline).
  std::string ToJsonString() const;
};

/// Executes the full pipeline for `spec`: validate, prepare tree, build
/// pool, pin levels, warm up, measure every class, evaluate the model.
Result<RunReport> Run(const ExperimentSpec& spec);

}  // namespace rtb::engine

#endif  // RTB_ENGINE_ENGINE_H_
