// Declarative experiment description for the engine (engine/engine.h).
//
// An ExperimentSpec captures everything one paper-style experiment needs —
// data set, tree construction, buffer pool, pinning, query workload, thread
// count and seeds — as one value that can be parsed from a JSON file
// (`rtb_cli run spec.json`) or built directly in C++ (benches, tests).
// The same spec drives both the measured run and the analytic cost model,
// so measured-vs-predicted comparisons always describe the same
// configuration.
//
// Example spec (all fields optional except workload.classes):
//
//   {
//     "name": "tiger_b200",
//     "dataset": {"kind": "tiger", "n": 53145, "seed": 7},
//     "tree": {"fanout": 100, "algo": "HS"},
//     "pool": {"buffer_pages": 200, "policy": "LRU", "pinned_levels": 0},
//     "workload": {
//       "warmup": 10000,
//       "classes": [
//         {"label": "point", "model": "uniform", "count": 100000},
//         {"label": "region1%", "model": "uniform",
//          "qx": 0.01, "qy": 0.01, "count": 100000},
//         {"label": "partial-x", "model": "uniform",
//          "qx": 0.01, "qy": "open", "count": 100000},
//         {"label": "hotspots", "model": "cluster", "qx": 0.01, "qy": 0.01,
//          "hotspots": 16, "spread": 0.05, "skew": 1.0, "count": 100000}
//       ]
//     },
//     "run": {"threads": 1, "seed": 1, "evaluate_model": true}
//   }
//
// Unknown keys anywhere in the document are rejected: a typoed field must
// fail loudly rather than silently fall back to a default.

#ifndef RTB_ENGINE_SPEC_H_
#define RTB_ENGINE_SPEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/query_class.h"
#include "report/json.h"
#include "storage/replacement.h"
#include "util/result.h"

namespace rtb::engine {

/// What to build the tree from. `kind == "file"` loads an rtb-rects file
/// from `path`; the synthetic kinds generate `n` rectangles with `seed`.
struct DatasetSpec {
  std::string kind = "uniform";  // uniform|region|tiger|cfd|clusters|file
  uint64_t n = 10000;
  uint64_t seed = 1;
  std::string path;  // Rectangle file (kind == "file", or centers source).
};

/// How to obtain the tree. A non-empty `index` opens a persistent index
/// built by `rtb_cli build` (the dataset is then only consulted for
/// data-driven query centers); otherwise the dataset is bulk-loaded into an
/// in-memory store.
struct TreeSpec {
  uint32_t fanout = 100;
  std::string algo = "HS";  // HS|NX|STR|TAT|RSTAR
  std::string index;        // Existing index file; empty = build from dataset.
};

/// Which PageStore backs a tree built from the dataset. `backend == "mem"`
/// (the default) is the paper's counting in-memory store; `backend ==
/// "file"` bulk-loads into a FilePageStore at `path` (created or
/// truncated), exercising the real preadv/pread read path. Ignored — and
/// rejected by Validate — when tree.index names a persistent index, which
/// carries its own file.
/// Write-ahead-log configuration (storage/wal.h). Enabling it switches the
/// run's pool to the no-force discipline: each drained update batch logs
/// page images plus one commit record, evictions ensure WAL-durability
/// before writeback, and the store is opened with recovery (replay a
/// committed log suffix, discard a torn tail). Requires backend "file".
struct WalSpec {
  bool enabled = false;
  std::string path;  // Log file; empty = storage.path + ".wal".
  /// Commit records per fdatasync (WalWriter::Options::group_commit_window):
  /// 1 forces every commit, N defers durability to every Nth commit.
  uint64_t group_commit_window = 8;
};

struct StorageSpec {
  std::string backend = "mem";  // mem|file
  std::string path;             // Store file (backend == "file").
  bool vectored_io = true;      // false forces one pread per page.
  /// Route batched fetches through the async read engine (storage/
  /// async_io.h): BeginFetchBatch submits a window's misses to a background
  /// reader so the executor overlaps the next window's I/O with the current
  /// window's scan. false keeps the fully synchronous FetchBatch path and
  /// its published counters. Applies to any backend (a "mem" store just
  /// reads on the engine thread).
  bool async_io = false;
  WalSpec wal;
};

/// Buffer pool configuration. `shards == 0` with `threads == 1` selects the
/// paper's serial pool (bit-reproducible); anything else the lock-striped
/// pool.
struct PoolSpec {
  uint64_t buffer_pages = 100;
  std::string policy = "LRU";  // LRU|FIFO|CLOCK|LFU|RANDOM|LRU2
  uint64_t shards = 0;         // Lock stripes; 0 = serial pool / auto.
  uint16_t pinned_levels = 0;  // Top tree levels pinned in the pool.
};

/// One query class: the unified model::QueryClass description (center
/// source, per-axis extents where an axis may be open, cluster parameters)
/// plus how many measured queries to run. JSON keys: "model" is the center
/// source, "qx"/"qy" are numbers or the string "open", and
/// "hotspots"/"spread"/"skew"/"hotspot_seed" configure model "cluster".
struct QueryClassSpec {
  std::string label;          // Defaults to model+extent if empty.
  model::QueryClass query;
  uint64_t count = 100000;
  /// Mixed insert/delete/search workload: each of the class's `count`
  /// operations is an insert with probability insert_frac, a delete of a
  /// present entry with probability delete_frac, and a search otherwise
  /// (sim::WorkloadOptions for the exact stream contract). Both 0 (the
  /// default) is a pure query class. Mixed classes mutate the tree, so
  /// they require a dataset-built tree (no tree.index), run.threads == 1
  /// and no shared frontier; the engine flushes the pool and structurally
  /// validates the tree after each mixed class's measured phase.
  double insert_frac = 0.0;
  double delete_frac = 0.0;

  bool IsMixed() const { return insert_frac > 0.0 || delete_frac > 0.0; }
};

/// The query workload: shared warm-up, then each class measured in order.
struct WorkloadSpec {
  uint64_t warmup = 10000;  // Warm-up queries from the first class.
  /// Queries per executor batch (rtree::BatchExecutor). 1 = the paper's
  /// serial per-query loop; >= 2 groups queries and visits each distinct
  /// page once per batch (level-synchronous traversal).
  uint64_t batch_size = 1;
  /// One page-ordered frontier shared by all workers
  /// (rtree::SharedBatchExecutor) instead of a private frontier per worker:
  /// duplicate page visits coalesce across threads. Requires
  /// batch_size >= 2.
  bool shared_frontier = false;
  /// Updates of a mixed class buffered per rtree::UpdateBatchExecutor
  /// batch (group-by-leaf application, vectored dirty-page writeback).
  /// 1 = apply each update tuple-at-a-time through RTree::Insert /
  /// RTree::Delete (Guttman's Delete/CondenseTree), the batched path's
  /// equivalence oracle. Ignored by pure query classes.
  uint64_t update_batch_size = 1;
  std::vector<QueryClassSpec> classes;

  bool HasMixedClass() const {
    for (const QueryClassSpec& cls : classes) {
      if (cls.IsMixed()) return true;
    }
    return false;
  }
};

/// Execution parameters.
struct RunSpec {
  uint32_t threads = 1;
  uint64_t seed = 1;           // Worker w of class c uses a substream of it.
  bool evaluate_model = true;  // Also compute the analytic prediction.
};

/// The complete declarative experiment.
struct ExperimentSpec {
  std::string name = "experiment";
  DatasetSpec dataset;
  TreeSpec tree;
  StorageSpec storage;
  PoolSpec pool;
  WorkloadSpec workload;
  RunSpec run;

  /// Parses a JSON document; missing fields keep their defaults, unknown
  /// keys and type mismatches are InvalidArgument. The result is Validated.
  static Result<ExperimentSpec> FromJson(const std::string& text);

  /// FromJson over the contents of `path`.
  static Result<ExperimentSpec> FromJsonFile(const std::string& path);

  /// Semantic checks beyond JSON shape: enum strings resolve, extents are
  /// in [0, 1), at least one query class with count > 0, threads >= 1,
  /// data-driven classes have a centers source, ...
  Status Validate() const;

  /// The spec as a JSON object (round-trips through FromJson).
  report::JsonDict ToJsonDict() const;
};

/// Parses a replacement-policy name ("LRU", "FIFO", "CLOCK", "LFU",
/// "RANDOM", "LRU2") as accepted in PoolSpec::policy.
Result<storage::PolicyKind> ParsePolicyKind(const std::string& name);

}  // namespace rtb::engine

#endif  // RTB_ENGINE_SPEC_H_
