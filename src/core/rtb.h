// Umbrella header for the rtree-buffer library.
//
// Pulls in the full public API:
//
//   rtb::geom     — rectangles, points, Hilbert curve, range counting
//   rtb::storage  — pages, page store, buffer pool, replacement policies
//   rtb::rtree    — R-tree, loading algorithms, summaries, validation
//   rtb::model    — access probabilities, bufferless and buffer cost models
//   rtb::sim      — query generators, LRU simulator, end-to-end runner
//   rtb::data     — data-set generators and rectangle file I/O
//   rtb::report   — JSON emission and parsing for machine-readable reports
//   rtb::engine   — declarative experiment specs and the run pipeline
//   rtb::net      — wire protocol, coalescing server, pipelined client
//
// A minimal workflow (see examples/quickstart.cc for a commented version):
//
//   rtb::Rng rng(42);
//   auto rects = rtb::data::GenerateSyntheticRegion(10000, &rng);
//   rtb::storage::MemPageStore store;
//   auto cfg = rtb::rtree::RTreeConfig::WithFanout(100);
//   auto built = rtb::rtree::BuildRTree(&store, cfg, rects,
//                                       rtb::rtree::LoadAlgorithm::kHilbertSort);
//   auto summary = rtb::rtree::TreeSummary::Extract(&store, built->root);
//   double ed = *rtb::model::PredictDiskAccesses(
//       *summary, rtb::model::QuerySpec::UniformPoint(), /*buffer_pages=*/50);

#ifndef RTB_CORE_RTB_H_
#define RTB_CORE_RTB_H_

#include "data/datasets.h"
#include "data/io.h"
#include "data/polygon.h"
#include "engine/engine.h"
#include "engine/index_meta.h"
#include "engine/spec.h"
#include "geom/hilbert.h"
#include "geom/point.h"
#include "geom/point_grid.h"
#include "geom/rect.h"
#include "model/access_prob.h"
#include "model/analytic_tree.h"
#include "model/cost_model.h"
#include "model/ndim.h"
#include "model/warmup.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "net/serving.h"
#include "report/json.h"
#include "rtree/batch.h"
#include "rtree/bulk_load.h"
#include "rtree/config.h"
#include "rtree/knn.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "rtree/scan_kernel.h"
#include "rtree/split.h"
#include "rtree/summary.h"
#include "rtree/validate.h"
#include "sim/lru_sim.h"
#include "sim/nd_sim.h"
#include "sim/query_gen.h"
#include "sim/runner.h"
#include "storage/buffer_pool.h"
#include "storage/fault_injection.h"
#include "storage/file_page_store.h"
#include "storage/page.h"
#include "storage/page_store.h"
#include "storage/replacement.h"
#include "storage/sharded_buffer_pool.h"
#include "util/batch_stats.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/status.h"

#endif  // RTB_CORE_RTB_H_
