// PageTable: the buffer pool's page-id -> frame-id index, as a fixed-size
// open-addressing hash table.
//
// The page table sits on the hot path of every Fetch: a buffer hit is one
// probe here plus a pin, so the structure is built for that case. Compared
// with the std::unordered_map it replaces:
//
//   * all storage is one flat array allocated at pool construction — a
//     steady-state fetch performs zero heap allocations;
//   * linear probing over a power-of-two slot array keeps a hit's probe
//     sequence in one or two cache lines instead of chasing bucket nodes;
//   * keys are scrambled with the SplitMix64 finalizer (the same mix
//     ShardedBufferPool uses to stripe pages), so the contiguous page ids a
//     bulk-loaded R-tree level produces do not cluster into long runs.
//
// The table never grows: the pool inserts at most one entry per frame and
// the constructor sizes the array to keep the load factor at or below 1/2.
// Deletion uses backward-shift compaction, so no tombstones accumulate and
// lookups stay O(probe run) forever. Not thread-safe; the owning BufferPool
// serializes access (directly or behind its shard lock).

#ifndef RTB_STORAGE_PAGE_TABLE_H_
#define RTB_STORAGE_PAGE_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/page.h"
#include "storage/replacement.h"
#include "util/macros.h"

namespace rtb::storage {

/// Fixed-capacity open-addressing map from PageId to FrameId.
class PageTable {
 public:
  /// Returned by Find when the page is not resident.
  static constexpr FrameId kNoFrame = static_cast<FrameId>(-1);

  /// A table that will hold at most `max_entries` concurrent mappings (one
  /// per pool frame). Allocates all storage up front.
  explicit PageTable(size_t max_entries) {
    size_t slots = 8;
    while (slots < 2 * max_entries) slots *= 2;
    slots_.resize(slots);
    mask_ = slots - 1;
  }

  /// Frame holding `id`, or kNoFrame.
  FrameId Find(PageId id) const {
    for (size_t i = Home(id);; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.key == id) return slot.frame;
      if (slot.key == kInvalidPageId) return kNoFrame;
    }
  }

  bool Contains(PageId id) const { return Find(id) != kNoFrame; }

  /// Maps `id` to `frame`. `id` must not already be present (the pool never
  /// double-installs a page) and the table is sized so a free slot always
  /// exists within one wrap.
  void Insert(PageId id, FrameId frame) {
    RTB_DCHECK(id != kInvalidPageId);
    RTB_DCHECK(size_ < slots_.size());
    for (size_t i = Home(id);; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      RTB_DCHECK(slot.key != id);
      if (slot.key == kInvalidPageId) {
        slot.key = id;
        slot.frame = frame;
        ++size_;
        return;
      }
    }
  }

  /// Removes `id`; returns false when absent. Backward-shift compaction:
  /// every displaced successor in the probe run moves up, so the run stays
  /// dense and no tombstone is left behind.
  bool Erase(PageId id) {
    size_t hole;
    for (size_t i = Home(id);; i = (i + 1) & mask_) {
      if (slots_[i].key == id) {
        hole = i;
        break;
      }
      if (slots_[i].key == kInvalidPageId) return false;
    }
    for (size_t j = (hole + 1) & mask_; slots_[j].key != kInvalidPageId;
         j = (j + 1) & mask_) {
      // slots_[j] may move into the hole iff its home position precedes the
      // hole along the probe order (cyclically): probing from home would
      // then reach `hole` before `j`.
      const size_t home = Home(slots_[j].key);
      if (((hole - home) & mask_) < ((j - home) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole].key = kInvalidPageId;
    --size_;
    return true;
  }

  size_t size() const { return size_; }
  size_t num_slots() const { return slots_.size(); }

 private:
  struct Slot {
    PageId key = kInvalidPageId;
    FrameId frame = 0;
  };

  size_t Home(PageId id) const {
    // SplitMix64 finalizer, as in ShardedBufferPool::ShardOf.
    uint64_t z = static_cast<uint64_t>(id) + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>((z ^ (z >> 31)) & mask_);
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_PAGE_TABLE_H_
