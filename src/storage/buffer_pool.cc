#include "storage/buffer_pool.h"

#include <string>
#include <utility>

namespace rtb::storage {

// Move-into-engaged-guard: the current guard's pin is released before
// adopting `other`'s frame, and self-assignment is a no-op (releasing first
// would otherwise drop the pin we are about to adopt).
PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.frame_ = Frame{};
    other.dirty_ = false;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
  }
}

Result<std::vector<PageGuard>> PageCache::FetchBatch(const PageId* ids,
                                                     size_t count) {
  std::vector<PageGuard> guards;
  guards.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    RTB_ASSIGN_OR_RETURN(PageGuard guard, Fetch(ids[i]));
    guards.push_back(std::move(guard));
  }
  return guards;
}

BufferPool::BufferPool(PageStore* store, size_t capacity,
                       std::unique_ptr<ReplacementPolicy> policy)
    : store_(store),
      capacity_(capacity),
      policy_(std::move(policy)),
      buffer_(capacity * store->page_size()),
      frames_(capacity),
      page_table_(capacity) {
  RTB_CHECK(store_ != nullptr);
  RTB_CHECK(capacity_ > 0);
  RTB_CHECK(policy_ != nullptr);
  free_frames_.reserve(capacity_);
  // Hand out low frame ids first.
  for (size_t f = capacity_; f > 0; --f) {
    free_frames_.push_back(static_cast<FrameId>(f - 1));
  }
}

std::unique_ptr<BufferPool> BufferPool::MakeLru(PageStore* store,
                                                size_t capacity) {
  return std::make_unique<BufferPool>(
      store, capacity, std::make_unique<LruPolicy>(capacity));
}

BufferPool::~BufferPool() {
  // Best-effort writeback so a store outliving the pool sees final state.
  (void)FlushAll();
}

Result<FrameId> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  FrameId victim;
  if (!policy_->Evict(&victim)) {
    return Status::ResourceExhausted(
        "buffer pool full: all frames pinned (capacity " +
        std::to_string(capacity_) + ")");
  }
  FrameMeta& meta = frames_[victim];
  RTB_DCHECK(meta.in_use && meta.pin_count == 0 && !meta.permanent);
  if (meta.dirty) {
    Status write = store_->Write(meta.page_id, FrameData(victim));
    if (!write.ok()) {
      // Keep the victim resident and evictable (at MRU position) so the
      // pool stays consistent; the dirty data is not lost and the caller
      // can retry.
      policy_->RecordAccess(victim);
      policy_->SetEvictable(victim, true);
      return write;
    }
    ++stats_.writebacks;
  }
  page_table_.Erase(meta.page_id);
  ++stats_.evictions;
  meta.Reset();
  return victim;
}

Result<FrameId> BufferPool::PinPage(PageId id) {
  ++stats_.requests;
  const FrameId resident = page_table_.Find(id);
  if (resident != PageTable::kNoFrame) {
    ++stats_.hits;
    FrameId f = resident;
    FrameMeta& meta = frames_[f];
    const uint32_t prev = meta.pin_count++;
    policy_->RecordAccess(f);
    if (prev == 0 && !meta.permanent) {
      policy_->SetEvictable(f, false);
    }
    return f;
  }
  ++stats_.misses;
  RTB_ASSIGN_OR_RETURN(FrameId f, AcquireFrame());
  Status read = store_->Read(id, FrameData(f));
  if (!read.ok()) {
    free_frames_.push_back(f);
    return read;
  }
  FrameMeta& meta = frames_[f];
  meta.page_id = id;
  meta.pin_count = 1;
  meta.permanent = false;
  meta.dirty = false;
  meta.in_use = true;
  page_table_.Insert(id, f);
  policy_->RecordAccess(f);
  policy_->SetEvictable(f, false);
  return f;
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPage(id));
  return PageGuard(this, Frame{id, FrameData(f), f}, /*mark_dirty=*/false);
}

Result<PageGuard> BufferPool::FetchMutable(PageId id) {
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPage(id));
  return PageGuard(this, Frame{id, FrameData(f), f}, /*mark_dirty=*/true);
}

Result<FrameId> BufferPool::InstallNewPage(PageId id) {
  // The new page is zero-filled in the store; fetching it would count one
  // read, which mirrors a real system formatting the page after allocation.
  // Avoid that read by installing the page directly.
  ++stats_.requests;
  ++stats_.misses;
  RTB_ASSIGN_OR_RETURN(FrameId f, AcquireFrame());
  FrameMeta& meta = frames_[f];
  meta.page_id = id;
  meta.pin_count = 1;
  meta.permanent = false;
  meta.dirty = true;
  meta.in_use = true;
  std::fill(FrameData(f), FrameData(f) + page_size(), uint8_t{0});
  page_table_.Insert(id, f);
  policy_->RecordAccess(f);
  policy_->SetEvictable(f, false);
  return f;
}

Result<PageGuard> BufferPool::NewPage() {
  RTB_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  RTB_ASSIGN_OR_RETURN(FrameId f, InstallNewPage(id));
  return PageGuard(this, Frame{id, FrameData(f), f}, /*mark_dirty=*/true);
}

void BufferPool::Unpin(const Frame& frame, bool dirty) {
  const FrameId f = frame.frame_id;
  RTB_DCHECK(f < frames_.size() && frames_[f].page_id == frame.page_id);
  FrameMeta& meta = frames_[f];
  const uint32_t prev = meta.pin_count--;
  RTB_CHECK(prev > 0);
  if (dirty) meta.dirty = true;
  if (prev == 1 && !meta.permanent) {
    policy_->SetEvictable(f, true);
  }
}

Status BufferPool::PinPermanently(PageId id) {
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPage(id));
  FrameMeta& meta = frames_[f];
  if (!meta.permanent) {
    meta.permanent = true;
    ++num_permanent_pins_;
  }
  // Drop the transient pin from PinPage; the permanent flag keeps the frame
  // unevictable.
  const uint32_t prev = meta.pin_count--;
  RTB_CHECK(prev > 0);
  return Status::OK();
}

Status BufferPool::UnpinPermanently(PageId id) {
  const FrameId f = page_table_.Find(id);
  if (f == PageTable::kNoFrame) {
    return Status::NotFound("page " + std::to_string(id) + " not in pool");
  }
  FrameMeta& meta = frames_[f];
  if (!meta.permanent) {
    return Status::FailedPrecondition("page " + std::to_string(id) +
                                      " is not permanently pinned");
  }
  meta.permanent = false;
  --num_permanent_pins_;
  if (meta.pin_count == 0) {
    policy_->SetEvictable(f, true);
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  RTB_RETURN_IF_ERROR(FlushAll());
  for (FrameId f = 0; f < frames_.size(); ++f) {
    FrameMeta& meta = frames_[f];
    if (!meta.in_use || meta.permanent) continue;
    if (meta.pin_count > 0) {
      return Status::FailedPrecondition(
          "cannot evict page " + std::to_string(meta.page_id) +
          ": still pinned");
    }
    policy_->Remove(f);
    page_table_.Erase(meta.page_id);
    meta.Reset();
    free_frames_.push_back(f);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (FrameId f = 0; f < frames_.size(); ++f) {
    FrameMeta& meta = frames_[f];
    if (meta.in_use && meta.dirty) {
      RTB_RETURN_IF_ERROR(store_->Write(meta.page_id, FrameData(f)));
      ++stats_.writebacks;
      meta.dirty = false;
    }
  }
  return Status::OK();
}

}  // namespace rtb::storage
