#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

#include "storage/async_io.h"
#include "storage/wal.h"

namespace rtb::storage {

PendingBatch& PendingBatch::operator=(PendingBatch&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->AbandonFetchBatch(*this);
    pool_ = other.pool_;
    token_ = other.token_;
    ready_ = std::move(other.ready_);
    other.pool_ = nullptr;
    other.token_ = 0;
    other.ready_.clear();
  }
  return *this;
}

PendingBatch::~PendingBatch() {
  if (pool_ != nullptr) pool_->AbandonFetchBatch(*this);
}

Result<PendingBatch> PageCache::BeginFetchBatch(const PageId* ids,
                                                size_t count) {
  // Synchronous default: the whole fetch happens here; Finish just unwraps.
  RTB_ASSIGN_OR_RETURN(std::vector<PageGuard> guards, FetchBatch(ids, count));
  PendingBatch batch;
  batch.pool_ = this;
  batch.token_ = 0;
  batch.ready_ = std::move(guards);
  return batch;
}

Result<std::vector<PageGuard>> PageCache::FinishFetchBatch(
    PendingBatch&& batch) {
  RTB_CHECK(batch.pool_ == this);
  RTB_CHECK(batch.token_ == 0);
  batch.pool_ = nullptr;
  return std::move(batch.ready_);
}

void PageCache::AbandonFetchBatch(PendingBatch& batch) {
  RTB_DCHECK(batch.token_ == 0);
  batch.pool_ = nullptr;
  batch.ready_.clear();  // Guard destructors release the pins.
}

// Move-into-engaged-guard: the current guard's pin is released before
// adopting `other`'s frame, and self-assignment is a no-op (releasing first
// would otherwise drop the pin we are about to adopt).
PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    frame_ = other.frame_;
    dirty_ = other.dirty_;
    other.pool_ = nullptr;
    other.frame_ = Frame{};
    other.dirty_ = false;
  }
  return *this;
}

void PageGuard::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(frame_, dirty_);
    pool_ = nullptr;
  }
}

Result<std::vector<PageGuard>> PageCache::FetchBatch(const PageId* ids,
                                                     size_t count) {
  std::vector<PageGuard> guards;
  guards.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    RTB_ASSIGN_OR_RETURN(PageGuard guard, Fetch(ids[i]));
    guards.push_back(std::move(guard));
  }
  return guards;
}

BufferPool::BufferPool(PageStore* store, size_t capacity,
                       std::unique_ptr<ReplacementPolicy> policy)
    : store_(store),
      capacity_(capacity),
      policy_(std::move(policy)),
      buffer_(capacity * store->page_size()),
      frames_(capacity),
      page_table_(capacity) {
  RTB_CHECK(store_ != nullptr);
  RTB_CHECK(capacity_ > 0);
  RTB_CHECK(policy_ != nullptr);
  free_frames_.reserve(capacity_);
  // Hand out low frame ids first.
  for (size_t f = capacity_; f > 0; --f) {
    free_frames_.push_back(static_cast<FrameId>(f - 1));
  }
}

std::unique_ptr<BufferPool> BufferPool::MakeLru(PageStore* store,
                                                size_t capacity) {
  return std::make_unique<BufferPool>(
      store, capacity, std::make_unique<LruPolicy>(capacity));
}

BufferPool::~BufferPool() {
  RTB_DCHECK(outstanding_.empty());
  // Best-effort writeback so a store outliving the pool sees final state; a
  // destructor can only log the failure — callers that must not lose data
  // call Close() and check.
  Status s = FlushAll();
  if (!s.ok()) {
    std::fprintf(stderr,
                 "BufferPool: writeback failed in destructor (call Close() "
                 "to handle): %s\n",
                 s.ToString().c_str());
    RTB_DCHECK(s.ok());
  }
}

Status BufferPool::Close() {
  // An outstanding async batch holds pinned, possibly unread frames; losing
  // track of it here would be a caller bug, not an I/O condition.
  RTB_DCHECK(outstanding_.empty());
  if (wal_ != nullptr) return WalCheckpoint();
  return FlushAll();
}

Result<FrameId> BufferPool::AcquireFrame() {
  if (!free_frames_.empty()) {
    FrameId f = free_frames_.back();
    free_frames_.pop_back();
    return f;
  }
  FrameId victim;
  if (!policy_->Evict(&victim)) {
    return Status::ResourceExhausted(
        "buffer pool full: all frames pinned (capacity " +
        std::to_string(capacity_) + ")");
  }
  FrameMeta& meta = frames_[victim];
  RTB_DCHECK(meta.in_use && meta.pin_count == 0 && !meta.permanent);
  if (meta.dirty) {
    Status write = WritebackVictim(victim);
    if (!write.ok()) {
      // Keep the victim resident and evictable (at MRU position) so the
      // pool stays consistent; the dirty data is not lost and the caller
      // can retry.
      policy_->RecordAccess(victim);
      policy_->SetEvictable(victim, true);
      return write;
    }
  }
  page_table_.Erase(meta.page_id);
  ++stats_.evictions;
  meta.Reset();
  return victim;
}

Status BufferPool::WalBeforeWriteback(const FrameId* frames, size_t n) {
  if (wal_ == nullptr) return Status::OK();
  Lsn max_lsn = kNoLsn;
  for (size_t k = 0; k < n; ++k) {
    FrameMeta& m = frames_[frames[k]];
    if (m.wal_dirty) {
      // Steal: the page leaves the pool mid-batch, so its current content
      // must be in the log — it becomes committed state if the batch's
      // commit record lands, and the already-logged before-image undoes it
      // if not.
      m.lsn = wal_->AppendPageImage(m.page_id, FrameData(frames[k]),
                                    page_size());
      m.wal_dirty = false;
    }
    max_lsn = std::max(max_lsn, m.lsn);
  }
  // WAL-before-data: every image covering these pages is durable before a
  // single data byte is overwritten.
  return wal_->EnsureDurable(max_lsn);
}

void BufferPool::WalLogDirtyImages() {
  if (wal_ == nullptr) return;
  for (FrameId f = 0; f < frames_.size(); ++f) {
    FrameMeta& m = frames_[f];
    if (m.in_use && m.wal_dirty) {
      m.lsn = wal_->AppendPageImage(m.page_id, FrameData(f), page_size());
      m.wal_dirty = false;
    }
  }
}

Status BufferPool::WalCommit() {
  if (wal_ == nullptr) return Status::OK();
  WalLogDirtyImages();
  RTB_ASSIGN_OR_RETURN(Lsn lsn, wal_->Commit(store_->num_pages()));
  (void)lsn;  // Durability is the writer's business (group-commit window).
  return Status::OK();
}

Status BufferPool::WalCheckpoint() {
  if (wal_ == nullptr) return Status::OK();
  // FlushAll logs images for anything still wal-dirty and ensures
  // durability before its writes, so the store ends up a superset of the
  // log; Sync makes it durable; then the log can restart empty.
  RTB_RETURN_IF_ERROR(FlushAll());
  RTB_RETURN_IF_ERROR(store_->Sync());
  return wal_->Checkpoint(store_->num_pages());
}

void BufferPool::DiscardAll() {
  for (FrameMeta& m : frames_) {
    if (m.in_use) {
      m.dirty = false;
      m.wal_dirty = false;
    }
  }
}

Status BufferPool::WritebackVictim(FrameId victim) {
  FrameMeta& meta = frames_[victim];
  if (!store_->CoalescesBatchWrites()) {
    RTB_RETURN_IF_ERROR(WalBeforeWriteback(&victim, 1));
    Status write = store_->Write(meta.page_id, FrameData(victim));
    if (write.ok()) {
      ++stats_.writebacks;
      meta.dirty = false;
    }
    return write;
  }
  // Grow a consecutive run of dirty, unpinned pages around the victim.
  // Group-by-leaf batches dirty page-id-adjacent leaves, so the run is
  // often long; the bound keeps the staging copy small and the run within
  // one pwritev at the store.
  constexpr size_t kMaxWritebackCluster = 32;
  wb_frames_.clear();
  wb_frames_.push_back(victim);
  const auto clusterable = [this](FrameId f) {
    const FrameMeta& m = frames_[f];
    return m.dirty && m.pin_count == 0;
  };
  PageId lo = meta.page_id;
  PageId hi = meta.page_id;
  while (wb_frames_.size() < kMaxWritebackCluster && lo > 0) {
    const FrameId f = page_table_.Find(lo - 1);
    if (f == PageTable::kNoFrame || !clusterable(f)) break;
    wb_frames_.push_back(f);
    --lo;
  }
  while (wb_frames_.size() < kMaxWritebackCluster &&
         hi + 1 != kInvalidPageId) {
    const FrameId f = page_table_.Find(hi + 1);
    if (f == PageTable::kNoFrame || !clusterable(f)) break;
    wb_frames_.push_back(f);
    ++hi;
  }
  std::sort(wb_frames_.begin(), wb_frames_.end(),
            [this](FrameId a, FrameId b) {
              return frames_[a].page_id < frames_[b].page_id;
            });
  RTB_RETURN_IF_ERROR(
      WalBeforeWriteback(wb_frames_.data(), wb_frames_.size()));
  const size_t stride = page_size();
  if (wb_scratch_.size() < wb_frames_.size() * stride) {
    wb_scratch_.resize(wb_frames_.size() * stride);
  }
  wb_ids_.resize(wb_frames_.size());
  for (size_t k = 0; k < wb_frames_.size(); ++k) {
    wb_ids_[k] = frames_[wb_frames_[k]].page_id;
    std::memcpy(wb_scratch_.data() + k * stride, FrameData(wb_frames_[k]),
                stride);
  }
  RTB_RETURN_IF_ERROR(store_->WriteBatch(wb_ids_.data(), wb_ids_.size(),
                                         wb_scratch_.data()));
  // Clean marks only land after the whole run succeeded: a mid-run error
  // may have written a prefix, and rewriting a page is harmless while
  // losing a dirty bit is not.
  for (const FrameId f : wb_frames_) {
    frames_[f].dirty = false;
    ++stats_.writebacks;
  }
  return Status::OK();
}

Result<FrameId> BufferPool::PinPageNoRead(PageId id, bool* pending) {
  *pending = false;
  ++stats_.requests;
  const FrameId resident = page_table_.Find(id);
  if (resident != PageTable::kNoFrame) {
    ++stats_.hits;
    FrameId f = resident;
    FrameMeta& meta = frames_[f];
    const uint32_t prev = meta.pin_count++;
    policy_->RecordAccess(f);
    if (prev == 0 && !meta.permanent) {
      policy_->SetEvictable(f, false);
    }
    return f;
  }
  ++stats_.misses;
  RTB_ASSIGN_OR_RETURN(FrameId f, AcquireFrame());
  FrameMeta& meta = frames_[f];
  meta.page_id = id;
  meta.pin_count = 1;
  meta.permanent = false;
  meta.dirty = false;
  meta.in_use = true;
  page_table_.Insert(id, f);
  policy_->RecordAccess(f);
  policy_->SetEvictable(f, false);
  *pending = true;
  return f;
}

void BufferPool::UninstallPending(FrameId f) {
  FrameMeta& meta = frames_[f];
  page_table_.Erase(meta.page_id);
  policy_->Remove(f);
  meta.Reset();
  free_frames_.push_back(f);
}

Result<FrameId> BufferPool::PinPage(PageId id) {
  bool pending = false;
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPageNoRead(id, &pending));
  if (!pending) return f;
  Status read = store_->Read(id, FrameData(f));
  if (!read.ok()) {
    UninstallPending(f);
    return read;
  }
  return f;
}

Status BufferPool::ReadPendingFrames(BatchEntry* entries, size_t n) {
  if (!store_->CoalescesBatchReads()) {
    // The store would serve ReadBatch as a loop of per-page reads anyway
    // (MemPageStore, or a file store with the vectored seam off), so read
    // straight into the frames, in presentation order, with no sort, no id
    // list and no staging copy — the exact read sequence of the looped
    // Fetch path. The pending flags clear only once every read succeeded,
    // so a mid-loop failure unwinds exactly like a failed ReadBatch:
    // nothing from this batch stays resident.
    for (size_t i = 0; i < n; ++i) {
      if (!entries[i].pending) continue;
      RTB_RETURN_IF_ERROR(store_->Read(entries[i].id, FrameData(entries[i].frame)));
    }
    for (size_t i = 0; i < n; ++i) entries[i].pending = false;
    return Status::OK();
  }
  // Collect the pending subset sorted by page id: the batch executor's
  // elevator sweep presents descending ids every other batch, and the
  // store's run coalescing wants ascending consecutive ids.
  batch_pending_.clear();
  for (size_t i = 0; i < n; ++i) {
    if (entries[i].pending) batch_pending_.push_back(&entries[i]);
  }
  if (batch_pending_.empty()) return Status::OK();
  std::sort(batch_pending_.begin(), batch_pending_.end(),
            [](const BatchEntry* a, const BatchEntry* b) {
              return a->id < b->id;
            });
  const size_t stride = page_size();
  if (batch_scratch_.size() < batch_pending_.size() * stride) {
    batch_scratch_.resize(batch_pending_.size() * stride);
  }
  batch_ids_.resize(batch_pending_.size());
  for (size_t k = 0; k < batch_pending_.size(); ++k) {
    batch_ids_[k] = batch_pending_[k]->id;
  }
  RTB_RETURN_IF_ERROR(store_->ReadBatch(batch_ids_.data(), batch_ids_.size(),
                                        batch_scratch_.data()));
  for (size_t k = 0; k < batch_pending_.size(); ++k) {
    std::memcpy(FrameData(batch_pending_[k]->frame),
                batch_scratch_.data() + k * stride, stride);
    batch_pending_[k]->pending = false;
  }
  return Status::OK();
}

Status BufferPool::StagePins(const PageId* ids, size_t count,
                             std::vector<BatchEntry>* entries) {
  entries->clear();
  entries->reserve(count);
  for (size_t i = 0; i < count; ++i) {
    bool pending = false;
    Result<FrameId> f = PinPageNoRead(ids[i], &pending);
    if (!f.ok()) {
      UnwindPins(*entries, /*data_valid=*/false);
      entries->clear();
      return f.status();
    }
    entries->push_back(BatchEntry{ids[i], *f, pending});
  }
  return Status::OK();
}

void BufferPool::UnwindPins(const std::vector<BatchEntry>& entries,
                            bool data_valid) {
  // Reverse order: a repeated id's extra pin on a pending frame drops
  // before the pending install itself is rolled back. Pending frames whose
  // data did arrive (an abandoned batch after a successful read) stay
  // resident — the read is paid for, the page is real.
  for (size_t i = entries.size(); i > 0; --i) {
    const BatchEntry& e = entries[i - 1];
    if (e.pending && !data_valid) {
      UninstallPending(e.frame);
    } else {
      Unpin(Frame{e.id, FrameData(e.frame), e.frame}, /*dirty=*/false);
    }
  }
}

Result<std::vector<PageGuard>> BufferPool::FetchBatch(const PageId* ids,
                                                      size_t count) {
  // Stage 1: pin every id in presentation order — hits and misses are
  // counted here, so BufferStats match the loop-Fetch path exactly — but
  // defer the miss reads. Stage 2 fills all misses with one store
  // ReadBatch. Guards are only materialized once every frame holds real
  // data; until then the pins are raw, which keeps the error unwind free of
  // guard-ordering hazards.
  std::vector<BatchEntry>& entries = batch_entries_;  // Reused across calls.
  RTB_RETURN_IF_ERROR(StagePins(ids, count, &entries));
  Status error = ReadPendingFrames(entries.data(), entries.size());
  if (!error.ok()) {
    UnwindPins(entries, /*data_valid=*/false);
    return error;
  }
  std::vector<PageGuard> guards;
  guards.reserve(count);
  for (const BatchEntry& e : entries) {
    guards.emplace_back(this, Frame{e.id, FrameData(e.frame), e.frame},
                        /*mark_dirty=*/false);
  }
  return guards;
}

Result<PendingBatch> BufferPool::BeginFetchBatch(const PageId* ids,
                                                 size_t count) {
  if (!AsyncIoActive()) {
    // Seam off: the synchronous base path, byte-identical to FetchBatch.
    return PageCache::BeginFetchBatch(ids, count);
  }
  PendingRead pr;
  RTB_RETURN_IF_ERROR(StagePins(ids, count, &pr.entries));
#if !defined(NDEBUG)
  // Overlap contract: a page still pending in another outstanding batch
  // must not reappear here — its "hit" would hand out unread bytes.
  for (const PendingRead& other : outstanding_) {
    for (const BatchEntry& oe : other.entries) {
      if (!oe.pending) continue;
      for (const BatchEntry& e : pr.entries) {
        RTB_DCHECK(e.id != oe.id);
      }
    }
  }
#endif
  std::vector<AsyncReadEngine::Request> reqs;
  for (const BatchEntry& e : pr.entries) {
    if (e.pending) {
      reqs.push_back(AsyncReadEngine::Request{e.id, FrameData(e.frame)});
    }
  }
  pr.token = next_pending_token_++;
  if (!reqs.empty()) {
    pr.job = AsyncReadEngine::Instance().Submit(store_, std::move(reqs));
    pr.has_job = true;
  }
  PendingBatch batch;
  batch.pool_ = this;
  batch.token_ = pr.token;
  outstanding_.push_back(std::move(pr));
  return batch;
}

Status BufferPool::CollectPendingRead(uint64_t token,
                                      std::vector<BatchEntry>* entries) {
  size_t idx = outstanding_.size();
  for (size_t i = 0; i < outstanding_.size(); ++i) {
    if (outstanding_[i].token == token) {
      idx = i;
      break;
    }
  }
  RTB_CHECK(idx < outstanding_.size());
  PendingRead pr = std::move(outstanding_[idx]);
  outstanding_.erase(outstanding_.begin() + static_cast<ptrdiff_t>(idx));
  *entries = std::move(pr.entries);
  if (!pr.has_job) return Status::OK();
  return AsyncReadEngine::Instance().Wait(pr.job);
}

Result<std::vector<PageGuard>> BufferPool::FinishFetchBatch(
    PendingBatch&& batch) {
  if (batch.token_ == 0) return PageCache::FinishFetchBatch(std::move(batch));
  RTB_CHECK(batch.pool_ == this);
  const uint64_t token = batch.token_;
  batch.pool_ = nullptr;  // Consumed: defuse the destructor.
  batch.token_ = 0;
  std::vector<BatchEntry> entries;
  Status read = CollectPendingRead(token, &entries);
  if (!read.ok()) {
    UnwindPins(entries, /*data_valid=*/false);
    return read;
  }
  std::vector<PageGuard> guards;
  guards.reserve(entries.size());
  for (const BatchEntry& e : entries) {
    guards.emplace_back(this, Frame{e.id, FrameData(e.frame), e.frame},
                        /*mark_dirty=*/false);
  }
  return guards;
}

void BufferPool::AbandonFetchBatch(PendingBatch& batch) {
  if (batch.token_ == 0) {
    PageCache::AbandonFetchBatch(batch);
    return;
  }
  RTB_CHECK(batch.pool_ == this);
  const uint64_t token = batch.token_;
  batch.pool_ = nullptr;
  batch.token_ = 0;
  std::vector<BatchEntry> entries;
  const Status read = CollectPendingRead(token, &entries);
  UnwindPins(entries, /*data_valid=*/read.ok());
}

Result<PageGuard> BufferPool::Fetch(PageId id) {
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPage(id));
  return PageGuard(this, Frame{id, FrameData(f), f}, /*mark_dirty=*/false);
}

Result<PageGuard> BufferPool::FetchMutable(PageId id) {
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPage(id));
  FrameMeta& meta = frames_[f];
  if (wal_ != nullptr && !meta.wal_dirty) {
    // First modification of this page since its last logged image: capture
    // the undo record now, while the frame still holds the pre-batch (or
    // pre-steal) content. Conservative — a FetchMutable that never writes
    // logs one redundant image.
    meta.lsn = wal_->AppendBeforeImage(id, FrameData(f), page_size());
    meta.wal_dirty = true;
  }
  return PageGuard(this, Frame{id, FrameData(f), f}, /*mark_dirty=*/true);
}

Result<FrameId> BufferPool::InstallNewPage(PageId id) {
  // The new page is zero-filled in the store; fetching it would count one
  // read, which mirrors a real system formatting the page after allocation.
  // Avoid that read by installing the page directly.
  ++stats_.requests;
  ++stats_.misses;
  RTB_ASSIGN_OR_RETURN(FrameId f, AcquireFrame());
  FrameMeta& meta = frames_[f];
  meta.page_id = id;
  meta.pin_count = 1;
  meta.permanent = false;
  meta.dirty = true;
  meta.in_use = true;
  // A fresh page needs no before-image: undo of an uncommitted allocation
  // is the recovery-time truncation to the committed page count.
  meta.wal_dirty = wal_ != nullptr;
  std::fill(FrameData(f), FrameData(f) + page_size(), uint8_t{0});
  page_table_.Insert(id, f);
  policy_->RecordAccess(f);
  policy_->SetEvictable(f, false);
  return f;
}

Result<PageGuard> BufferPool::NewPage() {
  RTB_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  RTB_ASSIGN_OR_RETURN(FrameId f, InstallNewPage(id));
  return PageGuard(this, Frame{id, FrameData(f), f}, /*mark_dirty=*/true);
}

void BufferPool::Unpin(const Frame& frame, bool dirty) {
  const FrameId f = frame.frame_id;
  RTB_DCHECK(f < frames_.size() && frames_[f].page_id == frame.page_id);
  FrameMeta& meta = frames_[f];
  const uint32_t prev = meta.pin_count--;
  RTB_CHECK(prev > 0);
  if (dirty) meta.dirty = true;
  if (prev == 1 && !meta.permanent) {
    policy_->SetEvictable(f, true);
  }
}

Status BufferPool::PinPermanently(PageId id) {
  RTB_ASSIGN_OR_RETURN(FrameId f, PinPage(id));
  FrameMeta& meta = frames_[f];
  if (!meta.permanent) {
    meta.permanent = true;
    ++num_permanent_pins_;
  }
  // Drop the transient pin from PinPage; the permanent flag keeps the frame
  // unevictable.
  const uint32_t prev = meta.pin_count--;
  RTB_CHECK(prev > 0);
  return Status::OK();
}

Status BufferPool::UnpinPermanently(PageId id) {
  const FrameId f = page_table_.Find(id);
  if (f == PageTable::kNoFrame) {
    return Status::NotFound("page " + std::to_string(id) + " not in pool");
  }
  FrameMeta& meta = frames_[f];
  if (!meta.permanent) {
    return Status::FailedPrecondition("page " + std::to_string(id) +
                                      " is not permanently pinned");
  }
  meta.permanent = false;
  --num_permanent_pins_;
  if (meta.pin_count == 0) {
    policy_->SetEvictable(f, true);
  }
  return Status::OK();
}

Status BufferPool::EvictAll() {
  RTB_RETURN_IF_ERROR(FlushAll());
  for (FrameId f = 0; f < frames_.size(); ++f) {
    FrameMeta& meta = frames_[f];
    if (!meta.in_use || meta.permanent) continue;
    if (meta.pin_count > 0) {
      return Status::FailedPrecondition(
          "cannot evict page " + std::to_string(meta.page_id) +
          ": still pinned");
    }
    policy_->Remove(f);
    page_table_.Erase(meta.page_id);
    meta.Reset();
    free_frames_.push_back(f);
  }
  return Status::OK();
}

Status BufferPool::FlushAll() {
  wb_frames_.clear();
  for (FrameId f = 0; f < frames_.size(); ++f) {
    const FrameMeta& meta = frames_[f];
    if (meta.in_use && meta.dirty) wb_frames_.push_back(f);
  }
  if (wb_frames_.empty()) return Status::OK();
  // Page-id order turns the flush into the longest possible consecutive
  // runs for WriteBatch, and keeps the scalar path's seeks monotone.
  std::sort(wb_frames_.begin(), wb_frames_.end(),
            [this](FrameId a, FrameId b) {
              return frames_[a].page_id < frames_[b].page_id;
            });
  RTB_RETURN_IF_ERROR(
      WalBeforeWriteback(wb_frames_.data(), wb_frames_.size()));
  if (!store_->CoalescesBatchWrites()) {
    for (const FrameId f : wb_frames_) {
      RTB_RETURN_IF_ERROR(store_->Write(frames_[f].page_id, FrameData(f)));
      ++stats_.writebacks;
      frames_[f].dirty = false;
    }
    return Status::OK();
  }
  const size_t stride = page_size();
  if (wb_scratch_.size() < wb_frames_.size() * stride) {
    wb_scratch_.resize(wb_frames_.size() * stride);
  }
  wb_ids_.resize(wb_frames_.size());
  for (size_t k = 0; k < wb_frames_.size(); ++k) {
    wb_ids_[k] = frames_[wb_frames_[k]].page_id;
    std::memcpy(wb_scratch_.data() + k * stride, FrameData(wb_frames_[k]),
                stride);
  }
  RTB_RETURN_IF_ERROR(store_->WriteBatch(wb_ids_.data(), wb_ids_.size(),
                                         wb_scratch_.data()));
  // A failed batch may have written a prefix; every page stays dirty so a
  // retry rewrites them all (idempotent), and nothing is marked clean that
  // the store has not durably accepted.
  for (const FrameId f : wb_frames_) {
    frames_[f].dirty = false;
    ++stats_.writebacks;
  }
  return Status::OK();
}

}  // namespace rtb::storage
