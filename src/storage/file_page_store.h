// FilePageStore: a PageStore backed by a real file.
//
// MemPageStore is the workhorse for experiments (counts are what the paper
// measures); FilePageStore makes the library usable as an actual persistent
// index. The file layout is a 32-byte header (magic, version, page size,
// page count) followed by the pages.
//
// I/O is positioned (`pread`/`pwrite` on a raw descriptor), so reads and
// writes of distinct pages proceed fully in parallel — no shared file
// position, no lock on the data path. The only mutex serializes Allocate
// and header writes; counters are atomic, matching MemPageStore.
//
// ReadBatch coalesces runs of consecutive page ids into a single `preadv`
// per run (consecutive pages are contiguous on disk), so the batch
// executor's page-ordered miss windows reach the kernel as one syscall per
// run instead of one per page. The vectored path sits behind a runtime
// seam mirroring the scan-kernel pattern: the RTB_VECTORED_IO CMake option
// gates compilation, the RTB_VECTORED_IO environment variable
// (0|off|scalar disables) caps the initial choice, and SetVectoredIo()
// switches it programmatically (used by the micro_file_io bench to measure
// both variants in one process). With the seam off every page is a scalar
// `pread` and `IoStats::read_batches` stays zero, so per-page counts are
// byte-identical to the pre-batch API.

#ifndef RTB_STORAGE_FILE_PAGE_STORE_H_
#define RTB_STORAGE_FILE_PAGE_STORE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "storage/page.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::storage {

/// True when this binary was compiled with the preadv path
/// (-DRTB_VECTORED_IO=ON, the default).
bool VectoredIoAvailable();

/// Whether FilePageStore::ReadBatch currently coalesces consecutive runs
/// with preadv. Initially VectoredIoAvailable() unless the RTB_VECTORED_IO
/// environment variable (0|off|scalar) disables it.
bool VectoredIoActive();

/// Enables or disables the vectored read path for subsequent ReadBatch
/// calls. Returns false (and changes nothing) when enabling is requested
/// but the binary lacks the path. Disabling always succeeds.
bool SetVectoredIo(bool on);

/// What FilePageStore::OpenWithRecovery found and did. All-zero (with
/// `wal_found == false`) when there was no log to recover from.
struct WalRecoveryReport {
  bool wal_found = false;
  bool tail_torn = false;        // The log ended in a torn/corrupt frame.
  uint64_t records_scanned = 0;  // Valid records in the log.
  uint64_t torn_bytes = 0;       // Bytes discarded after the valid prefix.
  uint64_t redo_pages = 0;       // Committed after-images replayed.
  uint64_t undo_pages = 0;       // Uncommitted before-images rolled back.
  Lsn last_commit_lsn = 0;       // kNoLsn when no commit survived.
};

/// File-backed PageStore. Create with Open (existing file) or Create (new
/// or truncated file); both return errors rather than throwing.
class FilePageStore final : public PageStore {
 public:
  /// Creates (or truncates) a store file with the given page size.
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, size_t page_size = kDefaultPageSize);

  /// Opens an existing store file; the page size and count come from the
  /// header.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  /// Opens `path` and recovers it against the write-ahead log at
  /// `wal_path`: scans the log from its last checkpoint, discards the torn
  /// tail (CRC), replays the committed suffix's after-images in LSN order,
  /// rolls uncommitted changes back through their before-images in reverse,
  /// truncates the page count to the last committed count, fsyncs the data
  /// file (DurableSync seam) and finally truncates the log — so a repeated
  /// recovery is a no-op. A missing log file means nothing to recover
  /// (plain Open semantics). `report`, when non-null, receives what was
  /// found and done.
  static Result<std::unique_ptr<FilePageStore>> OpenWithRecovery(
      const std::string& path, const std::string& wal_path,
      WalRecoveryReport* report = nullptr);

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  ~FilePageStore() override;

  size_t page_size() const override { return page_size_; }
  PageId num_pages() const override {
    return num_pages_.load(std::memory_order_acquire);
  }

  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status ReadBatch(const PageId* ids, size_t n, uint8_t* out) override;
  // With the seam off, ReadBatch is a pread-per-page loop, so callers may
  // as well issue the per-page reads themselves (straight into their
  // frames, no staging copy).
  bool CoalescesBatchReads() const override { return VectoredIoActive(); }
  Status Write(PageId id, const uint8_t* data) override;
  /// The write-side twin of ReadBatch: runs of consecutive ids become one
  /// pwritev each, behind the same vectored-I/O seam. The buffer pools feed
  /// it page-id-sorted dirty sets (flush, eviction clusters).
  Status WriteBatch(const PageId* ids, size_t n,
                    const uint8_t* data) override;
  bool CoalescesBatchWrites() const override { return VectoredIoActive(); }

  IoStats stats() const override {
    IoStats snapshot;
    snapshot.reads = reads_.load(std::memory_order_relaxed);
    snapshot.writes = writes_.load(std::memory_order_relaxed);
    snapshot.allocations = allocations_.load(std::memory_order_relaxed);
    snapshot.read_batches = read_batches_.load(std::memory_order_relaxed);
    snapshot.batch_pages = batch_pages_.load(std::memory_order_relaxed);
    snapshot.write_batches = write_batches_.load(std::memory_order_relaxed);
    snapshot.write_batch_pages =
        write_batch_pages_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() override {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    allocations_.store(0, std::memory_order_relaxed);
    read_batches_.store(0, std::memory_order_relaxed);
    batch_pages_.store(0, std::memory_order_relaxed);
    write_batches_.store(0, std::memory_order_relaxed);
    write_batch_pages_.store(0, std::memory_order_relaxed);
  }

  /// Writes the header and forces everything to stable storage with
  /// fsync(2) — the store's durability point (WAL checkpoints call it
  /// between flushing the pool and truncating the log). The fsync honors
  /// the DurableSync seam (RTB_NO_FSYNC / SetDurableSync); the header write
  /// always happens.
  Status Sync() override;

  /// Sync + close(2), releasing the descriptor. Idempotent (a second call
  /// returns OK); every error on the way out is reported, but the
  /// descriptor is always released. The destructor calls this too, but can
  /// only log a failure — callers that must not lose data call Close() and
  /// check the status.
  Status Close() override;

  /// Raw descriptor + data offset for the async engine's io_uring backend;
  /// fd == -1 once closed.
  DirectReadSource direct_read_source() const override;
  void RecordDirectRead(size_t run_pages) override;

  /// Releases the descriptor *without* the final header write + fsync —
  /// the teardown of a simulated crash, where nothing the dying process
  /// does may reach the file. Idempotent; the store must not be used
  /// afterwards (the destructor sees it already closed).
  void Abandon();

  const std::string& path() const { return path_; }

 private:
  FilePageStore(std::string path, int fd, size_t page_size, PageId num_pages)
      : path_(std::move(path)),
        fd_(fd),
        page_size_(page_size),
        num_pages_(num_pages) {}

  // Requires mu_ to be held.
  Status WriteHeader();

  // Recovery helper: grows (zero-filling) or shrinks (ftruncate) the file
  // to exactly `n` pages. Requires mu_ to be held.
  Status ResizeToPages(PageId n);

  std::string path_;
  int fd_ = -1;
  size_t page_size_;
  mutable std::mutex mu_;  // Serializes Allocate and header writes only.
  std::atomic<PageId> num_pages_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> read_batches_{0};
  std::atomic<uint64_t> batch_pages_{0};
  std::atomic<uint64_t> write_batches_{0};
  std::atomic<uint64_t> write_batch_pages_{0};
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_FILE_PAGE_STORE_H_
