// FilePageStore: a PageStore backed by a real file.
//
// MemPageStore is the workhorse for experiments (counts are what the paper
// measures); FilePageStore makes the library usable as an actual persistent
// index. The file layout is a 32-byte header (magic, version, page size,
// page count) followed by the pages. Reads/writes use positioned I/O on a
// single descriptor, serialized by one mutex (the stdio stream's file
// position is shared state), so the store is safe to use from the
// concurrent query layer.

#ifndef RTB_STORAGE_FILE_PAGE_STORE_H_
#define RTB_STORAGE_FILE_PAGE_STORE_H_

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

#include "storage/page.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::storage {

/// File-backed PageStore. Create with Open (existing file) or Create (new
/// or truncated file); both return errors rather than throwing.
class FilePageStore final : public PageStore {
 public:
  /// Creates (or truncates) a store file with the given page size.
  static Result<std::unique_ptr<FilePageStore>> Create(
      const std::string& path, size_t page_size = kDefaultPageSize);

  /// Opens an existing store file; the page size and count come from the
  /// header.
  static Result<std::unique_ptr<FilePageStore>> Open(const std::string& path);

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  ~FilePageStore() override;

  size_t page_size() const override { return page_size_; }
  PageId num_pages() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return num_pages_;
  }

  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* data) override;

  IoStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = IoStats{};
  }

  /// Flushes the header and data to the OS. Called by the destructor.
  Status Sync();

  const std::string& path() const { return path_; }

 private:
  FilePageStore(std::string path, std::FILE* file, size_t page_size,
                PageId num_pages)
      : path_(std::move(path)),
        file_(file),
        page_size_(page_size),
        num_pages_(num_pages) {}

  // Requires mu_ to be held.
  Status WriteHeader();

  std::string path_;
  std::FILE* file_ = nullptr;
  size_t page_size_;
  mutable std::mutex mu_;  // Serializes file position, counters, num_pages_.
  PageId num_pages_;
  IoStats stats_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_FILE_PAGE_STORE_H_
