// PageStore: the simulated disk.
//
// The paper's metric is the number of disk accesses; PageStore is the layer
// where those accesses happen and are counted. MemPageStore keeps pages in
// memory (this reproduction does not need real I/O latency, only accurate
// counts), but the interface is the one a file-backed store would implement.

#ifndef RTB_STORAGE_PAGE_STORE_H_
#define RTB_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <vector>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace rtb::storage {

/// Cumulative I/O counters for a PageStore.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
};

/// Abstract page-granular storage with access counting.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Size in bytes of every page in this store.
  virtual size_t page_size() const = 0;

  /// Number of allocated pages; valid page ids are [0, num_pages()).
  virtual PageId num_pages() const = 0;

  /// Allocates a new zero-filled page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `out` (must hold page_size() bytes). Counts one
  /// disk read.
  virtual Status Read(PageId id, uint8_t* out) = 0;

  /// Writes page `id` from `data` (page_size() bytes). Counts one disk
  /// write.
  virtual Status Write(PageId id, const uint8_t* data) = 0;

  /// I/O counters since construction (or the last ResetStats()).
  virtual const IoStats& stats() const = 0;
  virtual void ResetStats() = 0;
};

/// In-memory PageStore with exact access counting.
class MemPageStore final : public PageStore {
 public:
  explicit MemPageStore(size_t page_size = kDefaultPageSize);

  MemPageStore(const MemPageStore&) = delete;
  MemPageStore& operator=(const MemPageStore&) = delete;

  size_t page_size() const override { return page_size_; }
  PageId num_pages() const override {
    return static_cast<PageId>(pages_.size());
  }

  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* data) override;

  const IoStats& stats() const override { return stats_; }
  void ResetStats() override { stats_ = IoStats{}; }

 private:
  size_t page_size_;
  std::vector<std::vector<uint8_t>> pages_;
  IoStats stats_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_PAGE_STORE_H_
