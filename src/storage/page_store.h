// PageStore: the simulated disk.
//
// The paper's metric is the number of disk accesses; PageStore is the layer
// where those accesses happen and are counted. MemPageStore keeps pages in
// memory (this reproduction does not need real I/O latency, only accurate
// counts), but the interface is the one a file-backed store would implement.
//
// Stores are thread-safe: the concurrent query-execution layer
// (ShardedBufferPool + ParallelRunner) drives reads and writes from many
// worker threads at once. Counters are atomic and stats() returns a
// consistent snapshot; single-threaded runs see exactly the same counts as
// before the stores were made concurrent.

#ifndef RTB_STORAGE_PAGE_STORE_H_
#define RTB_STORAGE_PAGE_STORE_H_

#include <atomic>
#include <cstdint>
#include <shared_mutex>
#include <vector>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace rtb::storage {

/// Whether stores and the WAL issue real fsync/fdatasync at their
/// durability points (Create, Sync, Close, commit sync points). On by
/// default; the RTB_NO_FSYNC environment variable (1|on|true) or
/// SetDurableSync(false) turns the syscalls off — for tests and benches on
/// shared hardware, where a real fsync is slow and noisy. Durability
/// *counters* (IoStats::wal_fsyncs) still advance with the seam off, so
/// fsync-count assertions and benches are deterministic either way.
bool DurableSyncActive();
void SetDurableSync(bool on);

/// Cumulative I/O counters for a PageStore (a plain snapshot; the stores
/// keep the live counters in atomics).
///
/// `reads` counts every page read regardless of how it reached the store
/// (one per page even inside a coalesced batch), so the paper's disk-access
/// metric is unchanged by the batch-first API. `read_batches`/`batch_pages`
/// additionally count the vectored operations a store managed to coalesce:
/// a ReadBatch run of k >= 2 consecutive pages served by one preadv adds 1
/// to `read_batches` and k to `batch_pages`. Stores without a vectored path
/// (MemPageStore, or FilePageStore with the seam off) leave both at zero.
/// Read syscalls issued are therefore `reads - batch_pages + read_batches`.
///
/// The write side mirrors this exactly: `writes` stays per-page (the
/// paper's disk-write metric), `write_batches`/`write_batch_pages` count
/// the pwritev runs a store coalesced, and write syscalls issued are
/// `writes - write_batch_pages + write_batches`.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocations = 0;
  uint64_t read_batches = 0;  // Coalesced (vectored) read operations.
  uint64_t batch_pages = 0;   // Pages covered by those operations.
  uint64_t write_batches = 0;      // Coalesced (vectored) write operations.
  uint64_t write_batch_pages = 0;  // Pages covered by those operations.

  // Write-ahead-log counters (storage/wal.h), merged in by callers that run
  // a WalWriter next to the store (engine::Run). All zero when the WAL seam
  // is off, so WAL-off runs report byte-identical stats to pre-WAL builds.
  uint64_t wal_records = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_commits = 0;
  uint64_t wal_fsyncs = 0;

  double PagesPerBatch() const {
    return read_batches == 0 ? 0.0
                             : static_cast<double>(batch_pages) /
                                   static_cast<double>(read_batches);
  }
  double PagesPerWriteBatch() const {
    return write_batches == 0 ? 0.0
                              : static_cast<double>(write_batch_pages) /
                                    static_cast<double>(write_batches);
  }

  uint64_t ReadSyscalls() const { return reads - batch_pages + read_batches; }
  uint64_t WriteSyscalls() const {
    return writes - write_batch_pages + write_batches;
  }
};

/// Raw descriptor a store can expose for kernel-submitted reads (the
/// io_uring backend of storage/async_io.h). Page `id`'s bytes live at
/// `base_offset + id * page_size()` on `fd`. A store without one (or with
/// faults to inject, or already closed) returns the default `fd == -1` and
/// all reads go through Read/ReadBatch instead.
struct DirectReadSource {
  int fd = -1;
  uint64_t base_offset = 0;
};

/// Abstract page-granular storage with access counting.
class PageStore {
 public:
  virtual ~PageStore() = default;

  /// Size in bytes of every page in this store.
  virtual size_t page_size() const = 0;

  /// Number of allocated pages; valid page ids are [0, num_pages()).
  virtual PageId num_pages() const = 0;

  /// Allocates a new zero-filled page and returns its id.
  virtual Result<PageId> Allocate() = 0;

  /// Reads page `id` into `out` (must hold page_size() bytes). Counts one
  /// disk read.
  virtual Status Read(PageId id, uint8_t* out) = 0;

  /// Multi-get: reads pages `ids[0..n)` into `out` (`n * page_size()`
  /// bytes, page i at `out + i * page_size()`). Counts one disk read per
  /// page. The default implementation loops Read, so every store is correct
  /// by construction; stores with a faster path (FilePageStore's preadv
  /// over runs of consecutive ids) override it. On error the contents of
  /// `out` are unspecified — a mid-batch failure may have filled a prefix.
  virtual Status ReadBatch(const PageId* ids, size_t n, uint8_t* out);

  /// Whether ReadBatch can currently do better than a loop of Read calls
  /// (FilePageStore with the vectored seam on). Callers that would have to
  /// stage a batch through a bounce buffer — the buffer pools, whose frames
  /// are not contiguous per batch — consult this to skip the staging copy
  /// when the store would just loop anyway. Purely an optimization hint:
  /// ReadBatch is correct (and counts identically) regardless.
  virtual bool CoalescesBatchReads() const { return false; }

  /// Writes page `id` from `data` (page_size() bytes). Counts one disk
  /// write.
  virtual Status Write(PageId id, const uint8_t* data) = 0;

  /// Multi-put: writes pages `ids[0..n)` from `data` (`n * page_size()`
  /// bytes, page i at `data + i * page_size()`). Counts one disk write per
  /// page, so the paper's metric is independent of batching. The default
  /// loops Write; FilePageStore coalesces runs of consecutive ids into
  /// pwritev behind the vectored-I/O seam. On error a prefix of the batch
  /// may have reached the store — page writes are idempotent, so callers
  /// (the buffer pools) keep every page of a failed batch dirty and retry
  /// the whole batch.
  virtual Status WriteBatch(const PageId* ids, size_t n, const uint8_t* data);

  /// Whether WriteBatch can currently do better than a loop of Write calls
  /// (FilePageStore with the vectored seam on). The write-side twin of
  /// CoalescesBatchReads: pools consult it to decide whether sorting and
  /// staging a dirty set through a bounce buffer can pay off. Purely an
  /// optimization hint — WriteBatch is correct (and counts identically)
  /// regardless.
  virtual bool CoalescesBatchWrites() const { return false; }

  /// Makes every write issued so far durable (header + data + fsync for
  /// FilePageStore, honoring the DurableSync seam). A no-op for stores with
  /// nothing to sync (MemPageStore). The WAL checkpoint protocol calls this
  /// between flushing the pool and truncating the log.
  virtual Status Sync() { return Status::OK(); }

  /// Flushes any store-held state and releases the underlying resource,
  /// surfacing the errors the destructor would otherwise have to swallow
  /// (FilePageStore's final header write + fsync). Idempotent; the store
  /// must not be used for I/O afterwards. Callers that care about
  /// durability call this and check; the destructor only logs.
  virtual Status Close() { return Status::OK(); }

  /// Descriptor for kernel-submitted direct reads, when the store has one.
  /// See DirectReadSource.
  virtual DirectReadSource direct_read_source() const { return {}; }

  /// Accounting hook for a read of `run_pages` consecutive pages performed
  /// directly on direct_read_source() (bypassing Read/ReadBatch). Stores
  /// exposing a source must count it exactly as the equivalent ReadBatch
  /// would, so IoStats don't depend on which backend served the read.
  virtual void RecordDirectRead(size_t run_pages) { (void)run_pages; }

  /// Snapshot of the I/O counters since construction (or the last
  /// ResetStats()).
  virtual IoStats stats() const = 0;
  virtual void ResetStats() = 0;
};

/// In-memory PageStore with exact access counting. Thread-safe: Allocate
/// takes an exclusive lock, Read/Write of distinct pages proceed in
/// parallel under a shared lock. Concurrent writes to the *same* page are
/// the caller's responsibility (the buffer pools never issue them: one
/// frame per page).
class MemPageStore final : public PageStore {
 public:
  explicit MemPageStore(size_t page_size = kDefaultPageSize);

  MemPageStore(const MemPageStore&) = delete;
  MemPageStore& operator=(const MemPageStore&) = delete;

  size_t page_size() const override { return page_size_; }
  PageId num_pages() const override {
    std::shared_lock<std::shared_mutex> lock(mu_);
    return static_cast<PageId>(pages_.size());
  }

  Result<PageId> Allocate() override;
  Status Read(PageId id, uint8_t* out) override;
  Status Write(PageId id, const uint8_t* data) override;

  IoStats stats() const override {
    IoStats snapshot;
    snapshot.reads = reads_.load(std::memory_order_relaxed);
    snapshot.writes = writes_.load(std::memory_order_relaxed);
    snapshot.allocations = allocations_.load(std::memory_order_relaxed);
    return snapshot;
  }
  void ResetStats() override {
    reads_.store(0, std::memory_order_relaxed);
    writes_.store(0, std::memory_order_relaxed);
    allocations_.store(0, std::memory_order_relaxed);
  }

 private:
  size_t page_size_;
  mutable std::shared_mutex mu_;  // Guards pages_ growth vs. access.
  std::vector<std::vector<uint8_t>> pages_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> allocations_{0};
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_PAGE_STORE_H_
