// Page identifiers and constants for the paged storage layer.
//
// The paper assumes "exactly one node fits per page" (Section 2.1) and uses
// the two terms interchangeably; this layer provides the pages, and
// src/rtree serializes one node into each.

#ifndef RTB_STORAGE_PAGE_H_
#define RTB_STORAGE_PAGE_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rtb::storage {

/// Identifies a page within a PageStore. Page ids are dense, starting at 0.
using PageId = uint32_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

/// Default page size in bytes. Large enough for an R-tree node with fanout
/// 100 (16-byte header + 100 * 40-byte entries = 4016 bytes).
inline constexpr size_t kDefaultPageSize = 4096;

/// Log sequence number: the position of a write-ahead-log record in the
/// total order of WAL appends (storage/wal.h). LSNs start at 1 and are
/// monotonic within one log; the buffer pools tag each frame with the LSN
/// of its latest logged image so writeback can enforce WAL-before-data.
using Lsn = uint64_t;

/// Sentinel for "never logged": ordered before every real LSN, so
/// `EnsureDurable(kNoLsn)` is a no-op.
inline constexpr Lsn kNoLsn = 0;

}  // namespace rtb::storage

#endif  // RTB_STORAGE_PAGE_H_
