#include "storage/wal.h"

#include <fcntl.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "storage/page_store.h"  // DurableSyncActive()

namespace rtb::storage {
namespace {

// On-disk frame: a 24-byte header followed by payload_len payload bytes.
// The CRC covers everything after itself (length, LSN, type, page id,
// payload), so any bit of a half-written record fails the check.
struct WalDiskHeader {
  uint32_t crc;
  uint32_t payload_len;
  uint64_t lsn;
  uint32_t type;
  uint32_t page_id;
};
static_assert(sizeof(WalDiskHeader) == 24);

constexpr size_t kWalHeaderSize = sizeof(WalDiskHeader);
// Sanity bound while scanning: no record's payload exceeds this (pages are
// a few KiB; logical payloads are tiny). Anything larger is torn garbage.
constexpr uint32_t kMaxWalPayload = 1u << 24;
// iovec count per writev call; groups larger than this chunk (far below
// IOV_MAX everywhere).
constexpr size_t kMaxWalIov = 512;

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
const uint32_t* Crc32Table() {
  static uint32_t table[256];
  static bool initialized = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)initialized;
  return table;
}

uint32_t Crc32(uint32_t crc, const uint8_t* data, size_t len) {
  const uint32_t* table = Crc32Table();
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

bool InitialWal() {
#if defined(RTB_WAL_ENABLED)
  if (const char* env = std::getenv("RTB_WAL")) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) {
      return true;
    }
  }
#endif
  return false;
}

std::atomic<bool>& WalSlot() {
  static std::atomic<bool> slot{InitialWal()};
  return slot;
}

}  // namespace

bool WalAvailable() {
#if defined(RTB_WAL_ENABLED)
  return true;
#else
  return false;
#endif
}

bool WalActive() { return WalSlot().load(std::memory_order_relaxed); }

bool SetWal(bool on) {
  if (on && !WalAvailable()) return false;
  WalSlot().store(on, std::memory_order_relaxed);
  return true;
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     Options options) {
  if (options.group_commit_window == 0) {
    return Status::InvalidArgument("wal: group_commit_window must be >= 1");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create wal " + path);
  }
  // fsync-on-create: the (empty) log must exist durably before any record
  // in it can claim to. Directory-entry durability would additionally need
  // an fsync of the parent directory; we stop at the file, like the store.
  if (DurableSyncActive() && ::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError(path + ": fsync after create failed");
  }
  return std::unique_ptr<WalWriter>(new WalWriter(path, fd, options));
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path) {
  return Create(path, Options());
}

WalWriter::~WalWriter() {
  const bool dead = !sticky_error_.ok();
  Status s = Close();
  if (!s.ok() && !dead) {
    // A dead (simulated-crash) writer failing to close is expected; a live
    // one losing its final drain is not.
    std::fprintf(stderr,
                 "WalWriter: final drain failed in destructor (call Close() "
                 "to handle): %s\n",
                 s.ToString().c_str());
  }
}

Lsn WalWriter::AppendLocked(WalRecordType type, PageId page_id,
                            const uint8_t* payload, size_t len) {
  const Lsn lsn = next_lsn_++;
  std::vector<uint8_t> rec(kWalHeaderSize + len);
  WalDiskHeader header;
  header.crc = 0;
  header.payload_len = static_cast<uint32_t>(len);
  header.lsn = lsn;
  header.type = static_cast<uint32_t>(type);
  header.page_id = page_id;
  std::memcpy(rec.data(), &header, kWalHeaderSize);
  if (len > 0) std::memcpy(rec.data() + kWalHeaderSize, payload, len);
  const uint32_t crc =
      Crc32(0, rec.data() + sizeof(uint32_t), rec.size() - sizeof(uint32_t));
  std::memcpy(rec.data(), &crc, sizeof(crc));
  buffered_lsn_ = lsn;
  ++stats_.records;
  stats_.bytes += rec.size();
  pending_.push_back(std::move(rec));
  return lsn;
}

Lsn WalWriter::AppendPageImage(PageId id, const uint8_t* data, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(WalRecordType::kPageImage, id, data, len);
}

Lsn WalWriter::AppendBeforeImage(PageId id, const uint8_t* data, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(WalRecordType::kBeforeImage, id, data, len);
}

Lsn WalWriter::AppendLogicalUpdate(const uint8_t* data, size_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendLocked(WalRecordType::kLogicalUpdate, kInvalidPageId, data,
                      len);
}

Result<Lsn> WalWriter::Commit(uint64_t num_pages) {
  std::unique_lock<std::mutex> lk(mu_);
  RTB_RETURN_IF_ERROR(sticky_error_);
  uint8_t payload[sizeof(uint64_t)];
  std::memcpy(payload, &num_pages, sizeof(num_pages));
  const Lsn lsn = AppendLocked(WalRecordType::kCommit, kInvalidPageId,
                               payload, sizeof(payload));
  ++stats_.commits;
  if (++commits_since_sync_ < options_.group_commit_window) {
    // Deferred durability: this commit rides a later sync point.
    return lsn;
  }
  commits_since_sync_ = 0;
  for (;;) {
    RTB_RETURN_IF_ERROR(sticky_error_);
    if (durable_lsn_.load(std::memory_order_relaxed) >= lsn) return lsn;
    if (!sync_in_progress_) break;
    cv_.wait(lk);
  }
  RTB_RETURN_IF_ERROR(DrainLocked(lk));
  return lsn;
}

Status WalWriter::EnsureDurable(Lsn lsn) {
  if (lsn == kNoLsn) return Status::OK();
  if (Durable(lsn)) return Status::OK();
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    RTB_RETURN_IF_ERROR(sticky_error_);
    if (durable_lsn_.load(std::memory_order_relaxed) >= lsn) {
      return Status::OK();
    }
    if (!sync_in_progress_) break;
    // A leader is draining; its sync may already cover `lsn`.
    cv_.wait(lk);
  }
  return DrainLocked(lk);
}

Status WalWriter::DrainLocked(std::unique_lock<std::mutex>& lk) {
  if (pending_.empty()) return Status::OK();
  sync_in_progress_ = true;
  std::vector<std::vector<uint8_t>> batch = std::move(pending_);
  pending_.clear();
  const Lsn target = buffered_lsn_;
  lk.unlock();
  Status s = WriteAndSync(batch);
  lk.lock();
  sync_in_progress_ = false;
  if (s.ok()) {
    ++stats_.fsyncs;
    if (target > durable_lsn_.load(std::memory_order_relaxed)) {
      durable_lsn_.store(target, std::memory_order_release);
    }
  } else {
    sticky_error_ = s;
  }
  cv_.notify_all();
  return s;
}

Status WalWriter::WriteAndSync(
    const std::vector<std::vector<uint8_t>>& batch) {
  size_t total = 0;
  for (const auto& rec : batch) total += rec.size();
  size_t allowed = total;
  if (options_.fault_hook != nullptr) {
    allowed = std::min(options_.fault_hook->BeforeWrite(total), total);
  }
  // Gather the allowed prefix into iovecs; one pwritev in the common case,
  // chunked and partial-write-safe in general.
  std::vector<struct iovec> iov;
  iov.reserve(batch.size());
  size_t budget = allowed;
  for (const auto& rec : batch) {
    if (budget == 0) break;
    const size_t len = std::min(budget, rec.size());
    iov.push_back({const_cast<uint8_t*>(rec.data()), len});
    budget -= len;
  }
  off_t off = static_cast<off_t>(file_size_);
  size_t idx = 0;
  while (idx < iov.size()) {
    const int cnt = static_cast<int>(
        std::min(iov.size() - idx, kMaxWalIov));
    const ssize_t put = ::pwritev(fd_, iov.data() + idx, cnt, off);
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(path_ + ": wal write failed");
    }
    off += put;
    size_t adv = static_cast<size_t>(put);
    while (adv > 0 && idx < iov.size()) {
      if (adv >= iov[idx].iov_len) {
        adv -= iov[idx].iov_len;
        ++idx;
      } else {
        iov[idx].iov_base = static_cast<uint8_t*>(iov[idx].iov_base) + adv;
        iov[idx].iov_len -= adv;
        adv = 0;
      }
    }
  }
  file_size_ += allowed;
  if (allowed < total) {
    return Status::IoError(path_ + ": simulated crash tore the log write");
  }
  if (options_.fault_hook != nullptr && options_.fault_hook->FailSync()) {
    return Status::IoError(path_ + ": simulated crash before fdatasync");
  }
  if (DurableSyncActive() && ::fdatasync(fd_) != 0) {
    return Status::IoError(path_ + ": fdatasync failed");
  }
  return Status::OK();
}

Status WalWriter::Checkpoint(uint64_t num_pages) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    RTB_RETURN_IF_ERROR(sticky_error_);
    if (!sync_in_progress_) break;
    cv_.wait(lk);
  }
  // The caller flushed and fsynced the store first, so every record logged
  // up to here — including any still buffered — is redundant with durable
  // data pages. The log restarts as a single checkpoint record.
  pending_.clear();
  if (::ftruncate(fd_, 0) != 0) {
    sticky_error_ = Status::IoError(path_ + ": wal truncate failed");
    return sticky_error_;
  }
  file_size_ = 0;
  uint8_t payload[sizeof(uint64_t)];
  std::memcpy(payload, &num_pages, sizeof(num_pages));
  AppendLocked(WalRecordType::kCheckpoint, kInvalidPageId, payload,
               sizeof(payload));
  commits_since_sync_ = 0;
  return DrainLocked(lk);
}

Status WalWriter::Close() {
  std::unique_lock<std::mutex> lk(mu_);
  if (fd_ < 0) return Status::OK();
  Status result = sticky_error_;
  if (result.ok()) {
    while (sync_in_progress_) cv_.wait(lk);
    result = sticky_error_;
  }
  if (result.ok() && !pending_.empty()) {
    result = DrainLocked(lk);
  }
  if (::close(fd_) != 0 && result.ok()) {
    result = Status::IoError(path_ + ": close failed");
  }
  fd_ = -1;
  return result;
}

Result<std::unique_ptr<WalReader>> WalReader::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("wal not found: " + path);
    }
    return Status::IoError("cannot open wal " + path);
  }
  std::vector<uint8_t> data;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t got = ::read(fd, buf, sizeof(buf));
    if (got < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IoError(path + ": wal read failed");
    }
    if (got == 0) break;
    data.insert(data.end(), buf, buf + got);
  }
  ::close(fd);
  return std::unique_ptr<WalReader>(new WalReader(std::move(data)));
}

bool WalReader::Next(WalRecord* out) {
  if (done_) return false;
  if (data_.size() - pos_ < kWalHeaderSize) {
    // Trailing bytes too short for a header are a torn append (a clean end
    // lands exactly on a record boundary).
    torn_tail_ = pos_ < data_.size();
    done_ = true;
    return false;
  }
  WalDiskHeader header;
  std::memcpy(&header, data_.data() + pos_, kWalHeaderSize);
  if (header.payload_len > kMaxWalPayload ||
      data_.size() - pos_ - kWalHeaderSize < header.payload_len) {
    torn_tail_ = true;
    done_ = true;
    return false;
  }
  const size_t frame = kWalHeaderSize + header.payload_len;
  const uint32_t crc = Crc32(0, data_.data() + pos_ + sizeof(uint32_t),
                             frame - sizeof(uint32_t));
  if (crc != header.crc) {
    torn_tail_ = true;
    done_ = true;
    return false;
  }
  out->type = static_cast<WalRecordType>(header.type);
  out->lsn = header.lsn;
  out->page_id = header.page_id;
  out->num_pages = 0;
  out->payload.assign(data_.begin() + static_cast<ptrdiff_t>(pos_ + kWalHeaderSize),
                      data_.begin() + static_cast<ptrdiff_t>(pos_ + frame));
  if ((out->type == WalRecordType::kCommit ||
       out->type == WalRecordType::kCheckpoint) &&
      out->payload.size() >= sizeof(uint64_t)) {
    std::memcpy(&out->num_pages, out->payload.data(), sizeof(uint64_t));
  }
  pos_ += frame;
  valid_bytes_ = pos_;
  return true;
}

}  // namespace rtb::storage
