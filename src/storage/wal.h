// Write-ahead logging for the durable write path.
//
// WalWriter appends length+CRC32-framed records to a log file and makes
// them durable in groups: records accumulate in memory, and a *sync point*
// drains everything buffered with one writev + one fdatasync. Commit
// records trigger a sync point every `group_commit_window` commits, and
// EnsureDurable() lets the buffer pools force one before writing a page
// whose latest logged image is not yet durable (the WAL-before-data rule).
// Concurrent committers coalesce: the first caller to need durability
// becomes the leader and drains the whole buffer; waiters observe their LSN
// covered and return without issuing I/O of their own.
//
// Buffering in memory (rather than appending to the fd and deferring only
// the fdatasync) is a deliberate choice: a record that has not reached a
// sync point is genuinely absent from the file, so the crash-simulation
// tests get real torn-tail behavior without a kernel crash.
//
// The record set is physiological: full-page after-images (kPageImage) are
// the redo log, full-page before-images (kBeforeImage, captured at the
// first modification of a page since the last commit) are the undo log,
// and kCommit marks batch atomicity boundaries. Recovery (FilePageStore::
// OpenWithRecovery) replays committed after-images in LSN order, rolls the
// uncommitted suffix back through its before-images in reverse, and
// discards the torn tail by CRC. kCheckpoint records let the log truncate:
// the writer restarts the file at a checkpoint because the caller has
// already flushed and fsynced every logged page into the data file.
//
// The seam follows the repo pattern (vectored/async I/O): the RTB_WAL
// CMake option gates availability, the RTB_WAL environment variable (1|on)
// turns the runtime default on, SetWal() switches it programmatically, and
// the spec's storage.wal.enabled is the declarative knob. Everything is off
// by default at runtime, and with the seam off no WAL object exists —
// counters and I/O are byte-identical to pre-WAL builds.

#ifndef RTB_STORAGE_WAL_H_
#define RTB_STORAGE_WAL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "storage/page.h"
#include "util/result.h"
#include "util/status.h"

namespace rtb::storage {

/// True when this binary was compiled with the WAL (-DRTB_WAL=ON, the
/// default).
bool WalAvailable();

/// Whether the runtime default asks for a WAL (engine::Run opens one when
/// this is on even if the spec leaves storage.wal.enabled false). Initially
/// on only when the RTB_WAL environment variable is 1|on.
bool WalActive();

/// Turns the runtime default on or off. Returns false (and changes
/// nothing) when enabling is requested but the binary lacks the WAL.
bool SetWal(bool on);

enum class WalRecordType : uint32_t {
  kPageImage = 1,      // Redo: full page after-image.
  kBeforeImage = 2,    // Undo: full page image before its first dirtying.
  kLogicalUpdate = 3,  // Opaque description of a logical batch (not replayed).
  kCommit = 4,         // Batch atomicity boundary; payload = page count.
  kCheckpoint = 5,     // Log restart point; payload = page count.
};

/// One decoded log record (WalReader::Next).
struct WalRecord {
  WalRecordType type = WalRecordType::kLogicalUpdate;
  Lsn lsn = kNoLsn;
  PageId page_id = kInvalidPageId;  // Image records only.
  uint64_t num_pages = 0;           // Commit/checkpoint records only.
  std::vector<uint8_t> payload;     // Page bytes or logical payload.
};

/// Cumulative WalWriter counters. `fsyncs` counts durability points (one
/// per drained group), and advances even when the DurableSync seam has
/// turned the actual fdatasync syscall off — so fsync-per-commit
/// assertions are deterministic on any filesystem.
struct WalStats {
  uint64_t records = 0;
  uint64_t bytes = 0;
  uint64_t commits = 0;
  uint64_t fsyncs = 0;
};

/// Crash-simulation hook for WalWriter (see FaultInjectingPageStore's
/// CrashWalHook). Called at sync points, outside the writer's mutex.
class WalFaultHook {
 public:
  virtual ~WalFaultHook() = default;

  /// Called before the drained group's bytes go to the file. Returns how
  /// many of the `len` bytes the simulated disk accepts: `len` (the
  /// default) means no fault; anything smaller persists that prefix (a
  /// torn tail) and kills the writer.
  virtual size_t BeforeWrite(size_t len) { return len; }

  /// Called after the bytes are written, before fdatasync. True simulates
  /// dying at the sync: the bytes are in the file but were never forced.
  virtual bool FailSync() { return false; }
};

/// Appends framed records to a log file with group commit. Thread-safe:
/// appends take an internal mutex, and sync points coalesce concurrent
/// callers (leader/follower). A failed sync point is sticky — the writer
/// is dead, every later durability request returns the same error — which
/// is exactly the behavior a simulated crash needs.
class WalWriter {
 public:
  struct Options {
    /// Commit records per sync point. 1 = force at every commit (classic
    /// commit-per-batch durability); N > 1 defers: a commit returns after
    /// buffering its record, and every Nth commit drains the group with one
    /// writev + one fdatasync. Deferred commits are durable no later than
    /// the next sync point, eviction-forced EnsureDurable, or Close.
    uint64_t group_commit_window = 1;
    /// Crash-simulation hook (not owned; may be null).
    WalFaultHook* fault_hook = nullptr;
  };

  /// Creates (or truncates) the log at `path` and fsyncs the empty file
  /// (honoring the DurableSync seam), so the log exists on disk before the
  /// first record claims durability.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   Options options);
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  ~WalWriter();

  /// Buffer a full-page after-image / before-image. Returns the record's
  /// LSN; the append itself cannot fail (I/O happens at sync points).
  Lsn AppendPageImage(PageId id, const uint8_t* data, size_t len);
  Lsn AppendBeforeImage(PageId id, const uint8_t* data, size_t len);

  /// Buffer an opaque logical-update record (batch descriptions; recovery
  /// ignores them, the page images carry the redo/undo content).
  Lsn AppendLogicalUpdate(const uint8_t* data, size_t len);

  /// Buffer a commit record carrying the store's page count at commit, and
  /// drain the group when this is the window's Nth commit. Returns the
  /// commit record's LSN.
  Result<Lsn> Commit(uint64_t num_pages);

  /// Blocks until every record with LSN <= `lsn` is durable, draining the
  /// buffer (one writev + one fdatasync) if needed. kNoLsn is a no-op.
  Status EnsureDurable(Lsn lsn);

  /// True when record `lsn` is already durable (no I/O).
  bool Durable(Lsn lsn) const {
    return lsn <= durable_lsn_.load(std::memory_order_acquire);
  }

  /// Restarts the log: truncates the file and writes (durably) a single
  /// checkpoint record carrying the store's page count. Callers must have
  /// flushed and fsynced the data store first — the truncation assumes
  /// every previously logged page is durably in the store.
  Status Checkpoint(uint64_t num_pages);

  /// Drains any buffered records durably and releases the descriptor.
  /// Idempotent. A dead (crashed) writer returns its sticky error without
  /// touching the file again.
  Status Close();

  /// LSN of the most recently buffered record (kNoLsn when none yet).
  Lsn last_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffered_lsn_;
  }

  WalStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  const std::string& path() const { return path_; }

 private:
  WalWriter(std::string path, int fd, Options options)
      : path_(std::move(path)), fd_(fd), options_(options) {}

  // Serializes one record into pending_; returns its LSN. Requires mu_.
  Lsn AppendLocked(WalRecordType type, PageId page_id, const uint8_t* payload,
                   size_t len);

  // Leader body of a sync point: takes the whole buffer, writes + syncs it
  // outside the lock, publishes durable_lsn_ (or the sticky error) and
  // wakes waiters. Requires mu_ held via `lk` and !sync_in_progress_.
  Status DrainLocked(std::unique_lock<std::mutex>& lk);

  // One writev (chunked past IOV_MAX) + one fdatasync for the drained
  // group, applying the fault hook. Runs outside mu_; only the single
  // in-progress drainer touches file_size_.
  Status WriteAndSync(const std::vector<std::vector<uint8_t>>& batch);

  std::string path_;
  int fd_ = -1;
  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::vector<uint8_t>> pending_;  // Serialized, not yet on disk.
  Lsn next_lsn_ = 1;
  Lsn buffered_lsn_ = kNoLsn;  // Last appended.
  std::atomic<Lsn> durable_lsn_{kNoLsn};
  uint64_t commits_since_sync_ = 0;
  bool sync_in_progress_ = false;
  Status sticky_error_;
  uint64_t file_size_ = 0;
  WalStats stats_;
};

/// Sequential reader over a log file. Loads the file at Open (logs are
/// truncated at every checkpoint, so they stay small) and decodes records
/// until the clean end or the first frame whose length or CRC does not
/// check out — a torn tail, which recovery discards.
class WalReader {
 public:
  static Result<std::unique_ptr<WalReader>> Open(const std::string& path);

  WalReader(const WalReader&) = delete;
  WalReader& operator=(const WalReader&) = delete;

  /// Decodes the next record into `*out`. Returns false at the end of the
  /// valid prefix (clean EOF or torn tail — torn_tail() distinguishes).
  bool Next(WalRecord* out);

  /// True when the scan stopped at bytes that do not frame a valid record
  /// (short header, implausible length, or CRC mismatch).
  bool torn_tail() const { return torn_tail_; }

  /// File offset just past the last valid record.
  uint64_t valid_bytes() const { return valid_bytes_; }

 private:
  explicit WalReader(std::vector<uint8_t> data) : data_(std::move(data)) {}

  std::vector<uint8_t> data_;
  size_t pos_ = 0;
  uint64_t valid_bytes_ = 0;
  bool torn_tail_ = false;
  bool done_ = false;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_WAL_H_
