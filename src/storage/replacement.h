// Buffer replacement policies.
//
// The paper models an LRU buffer (Section 3.3, following Bhide-Dan-Dias).
// LruPolicy is therefore the canonical implementation; FIFO, CLOCK, LFU and
// RANDOM are provided so the ablation benches can quantify how sensitive the
// paper's conclusions are to the choice of policy.
//
// A policy tracks *frames* (slots of the buffer pool), not pages. The pool
// tells the policy when a frame is accessed, when it becomes evictable
// (unpinned) or unevictable (pinned), and asks it to choose a victim.

#ifndef RTB_STORAGE_REPLACEMENT_H_
#define RTB_STORAGE_REPLACEMENT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace rtb::storage {

/// Frame index within a BufferPool.
using FrameId = uint32_t;

namespace detail {

/// Doubly-linked list of frame ids whose links live in a fixed array
/// indexed by frame. Every operation is O(1) and touches no heap memory, so
/// the recency bookkeeping on the buffer-pool hit path never allocates
/// (std::list would malloc/free a node per access).
class FrameList {
 public:
  static constexpr FrameId kNil = static_cast<FrameId>(-1);

  explicit FrameList(size_t capacity) : links_(capacity) {}

  FrameId front() const { return head_; }
  FrameId back() const { return tail_; }
  FrameId Next(FrameId f) const { return links_[f].next; }
  FrameId Prev(FrameId f) const { return links_[f].prev; }

  void PushFront(FrameId f) {
    links_[f] = Link{kNil, head_};
    if (head_ != kNil) {
      links_[head_].prev = f;
    } else {
      tail_ = f;
    }
    head_ = f;
  }

  void PushBack(FrameId f) {
    links_[f] = Link{tail_, kNil};
    if (tail_ != kNil) {
      links_[tail_].next = f;
    } else {
      head_ = f;
    }
    tail_ = f;
  }

  void Erase(FrameId f) {
    const Link link = links_[f];
    if (link.prev != kNil) {
      links_[link.prev].next = link.next;
    } else {
      head_ = link.next;
    }
    if (link.next != kNil) {
      links_[link.next].prev = link.prev;
    } else {
      tail_ = link.prev;
    }
  }

  void MoveToFront(FrameId f) {
    if (head_ == f) return;
    Erase(f);
    PushFront(f);
  }

 private:
  struct Link {
    FrameId prev = kNil;
    FrameId next = kNil;
  };
  std::vector<Link> links_;
  FrameId head_ = kNil;
  FrameId tail_ = kNil;
};

}  // namespace detail

/// Abstract replacement policy. All methods refer to frame ids in
/// [0, capacity).
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  /// Called on every logical access (hit or fill) to `frame`.
  virtual void RecordAccess(FrameId frame) = 0;

  /// Marks `frame` evictable or not. Frames start out not tracked; the first
  /// SetEvictable(frame, true) after RecordAccess makes them candidates.
  virtual void SetEvictable(FrameId frame, bool evictable) = 0;

  /// Chooses a victim among evictable frames and removes it from the policy.
  /// Returns false when no frame is evictable.
  virtual bool Evict(FrameId* victim) = 0;

  /// Forgets all state about `frame` (e.g. its page left the pool).
  virtual void Remove(FrameId frame) = 0;

  /// Number of currently evictable frames.
  virtual size_t NumEvictable() const = 0;

  /// Policy name for reports ("LRU", "FIFO", ...).
  virtual std::string_view name() const = 0;
};

/// Least-recently-used: evicts the evictable frame whose last access is
/// oldest. O(1) per operation.
class LruPolicy final : public ReplacementPolicy {
 public:
  explicit LruPolicy(size_t capacity);

  void RecordAccess(FrameId frame) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  bool Evict(FrameId* victim) override;
  void Remove(FrameId frame) override;
  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "LRU"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
  };
  // Recency order: front = most recent, back = least recent. A frame is
  // linked iff tracked.
  detail::FrameList order_;
  std::vector<Entry> entries_;
  size_t num_evictable_ = 0;
};

/// First-in-first-out: evicts the evictable frame that entered the pool
/// earliest; accesses do not refresh position.
class FifoPolicy final : public ReplacementPolicy {
 public:
  explicit FifoPolicy(size_t capacity);

  void RecordAccess(FrameId frame) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  bool Evict(FrameId* victim) override;
  void Remove(FrameId frame) override;
  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "FIFO"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
  };
  detail::FrameList order_;  // front = oldest.
  std::vector<Entry> entries_;
  size_t num_evictable_ = 0;
};

/// CLOCK (second chance): a reference bit per frame and a sweeping hand.
class ClockPolicy final : public ReplacementPolicy {
 public:
  explicit ClockPolicy(size_t capacity);

  void RecordAccess(FrameId frame) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  bool Evict(FrameId* victim) override;
  void Remove(FrameId frame) override;
  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "CLOCK"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
    bool referenced = false;
  };
  std::vector<Entry> entries_;
  size_t hand_ = 0;
  size_t num_evictable_ = 0;
};

/// Least-frequently-used with LRU tie-breaking.
class LfuPolicy final : public ReplacementPolicy {
 public:
  explicit LfuPolicy(size_t capacity);

  void RecordAccess(FrameId frame) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  bool Evict(FrameId* victim) override;
  void Remove(FrameId frame) override;
  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "LFU"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
    uint64_t frequency = 0;
    uint64_t last_access = 0;  // Logical clock for tie-breaking.
  };
  std::vector<Entry> entries_;
  uint64_t clock_ = 0;
  size_t num_evictable_ = 0;
};

/// LRU-K (O'Neil, O'Neil & Weikum 1993): evicts the evictable frame whose
/// K-th most recent access is oldest; frames with fewer than K recorded
/// accesses have backward-K-distance infinity and are evicted first (ties
/// broken by oldest most-recent access). K = 2 is the classic database
/// configuration.
class LruKPolicy final : public ReplacementPolicy {
 public:
  LruKPolicy(size_t capacity, size_t k);

  void RecordAccess(FrameId frame) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  bool Evict(FrameId* victim) override;
  void Remove(FrameId frame) override;
  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "LRU-K"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
    // Ring buffer of the last (up to) k access timestamps; history[next]
    // is the oldest once full.
    std::vector<uint64_t> history;
    size_t next = 0;
    size_t count = 0;

    uint64_t KthMostRecent(size_t k) const {
      if (count < k) return 0;  // "Infinite" backward distance marker.
      return history[next];     // Oldest of the k retained stamps.
    }
    uint64_t MostRecent(size_t k) const {
      if (count == 0) return 0;
      size_t idx = (next + std::min(count, k) - 1) % k;
      return history[idx];
    }
  };
  std::vector<Entry> entries_;
  size_t k_;
  uint64_t clock_ = 0;
  size_t num_evictable_ = 0;
};

/// Uniform random eviction among evictable frames (seeded, deterministic).
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(size_t capacity, uint64_t seed);

  void RecordAccess(FrameId frame) override;
  void SetEvictable(FrameId frame, bool evictable) override;
  bool Evict(FrameId* victim) override;
  void Remove(FrameId frame) override;
  size_t NumEvictable() const override { return num_evictable_; }
  std::string_view name() const override { return "RANDOM"; }

 private:
  struct Entry {
    bool tracked = false;
    bool evictable = false;
  };
  std::vector<Entry> entries_;
  Rng rng_;
  size_t num_evictable_ = 0;
};

/// Identifier for constructing policies by name (used by benches and CLIs).
enum class PolicyKind { kLru, kFifo, kClock, kLfu, kRandom, kLruK };

/// Factory. `seed` is only used by kRandom; kLruK uses K = 2.
std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind, size_t capacity,
                                              uint64_t seed = 0);

/// Name of a PolicyKind ("LRU", "FIFO", ...).
std::string_view PolicyKindName(PolicyKind kind);

}  // namespace rtb::storage

#endif  // RTB_STORAGE_REPLACEMENT_H_
