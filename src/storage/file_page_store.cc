#include "storage/file_page_store.h"

#include <cstring>
#include <vector>

namespace rtb::storage {
namespace {

constexpr uint32_t kFileMagic = 0x52544253;  // "RTBS"
constexpr uint32_t kFileVersion = 1;
constexpr size_t kHeaderSize = 32;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint64_t page_size;
  uint64_t num_pages;
  uint64_t reserved;
};
static_assert(sizeof(Header) == kHeaderSize);

long PageOffset(PageId id, size_t page_size) {
  return static_cast<long>(kHeaderSize +
                           static_cast<uint64_t>(id) * page_size);
}

}  // namespace

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path, size_t page_size) {
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be positive");
  }
  std::FILE* file = std::fopen(path.c_str(), "wb+");
  if (file == nullptr) {
    return Status::IoError("cannot create " + path);
  }
  auto store = std::unique_ptr<FilePageStore>(
      new FilePageStore(path, file, page_size, 0));
  {
    std::lock_guard<std::mutex> lock(store->mu_);
    RTB_RETURN_IF_ERROR(store->WriteHeader());
  }
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb+");
  if (file == nullptr) {
    return Status::IoError("cannot open " + path);
  }
  Header header;
  if (std::fread(&header, sizeof(header), 1, file) != 1) {
    std::fclose(file);
    return Status::Corruption(path + ": truncated header");
  }
  if (header.magic != kFileMagic) {
    std::fclose(file);
    return Status::Corruption(path + ": bad magic");
  }
  if (header.version != kFileVersion) {
    std::fclose(file);
    return Status::NotSupported(path + ": unsupported version " +
                                std::to_string(header.version));
  }
  if (header.page_size == 0 || header.num_pages > kInvalidPageId) {
    std::fclose(file);
    return Status::Corruption(path + ": implausible header fields");
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(
      path, file, static_cast<size_t>(header.page_size),
      static_cast<PageId>(header.num_pages)));
}

FilePageStore::~FilePageStore() {
  if (file_ != nullptr) {
    (void)Sync();
    std::fclose(file_);
  }
}

Status FilePageStore::WriteHeader() {
  Header header{kFileMagic, kFileVersion, page_size_, num_pages_, 0};
  if (std::fseek(file_, 0, SEEK_SET) != 0 ||
      std::fwrite(&header, sizeof(header), 1, file_) != 1) {
    return Status::IoError(path_ + ": header write failed");
  }
  return Status::OK();
}

Result<PageId> FilePageStore::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  if (num_pages_ >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  PageId id = num_pages_;
  std::vector<uint8_t> zeros(page_size_, 0);
  if (std::fseek(file_, PageOffset(id, page_size_), SEEK_SET) != 0 ||
      std::fwrite(zeros.data(), 1, page_size_, file_) != page_size_) {
    return Status::IoError(path_ + ": page allocation write failed");
  }
  ++num_pages_;
  ++stats_.allocations;
  return id;
}

Status FilePageStore::Read(PageId id, uint8_t* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::NotFound("read of unallocated page " + std::to_string(id));
  }
  if (std::fseek(file_, PageOffset(id, page_size_), SEEK_SET) != 0 ||
      std::fread(out, 1, page_size_, file_) != page_size_) {
    return Status::IoError(path_ + ": page read failed");
  }
  ++stats_.reads;
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const uint8_t* data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id >= num_pages_) {
    return Status::NotFound("write of unallocated page " +
                            std::to_string(id));
  }
  if (std::fseek(file_, PageOffset(id, page_size_), SEEK_SET) != 0 ||
      std::fwrite(data, 1, page_size_, file_) != page_size_) {
    return Status::IoError(path_ + ": page write failed");
  }
  ++stats_.writes;
  return Status::OK();
}

Status FilePageStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  RTB_RETURN_IF_ERROR(WriteHeader());
  if (std::fflush(file_) != 0) {
    return Status::IoError(path_ + ": flush failed");
  }
  return Status::OK();
}

}  // namespace rtb::storage
