#include "storage/file_page_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "storage/wal.h"

namespace rtb::storage {
namespace {

constexpr uint32_t kFileMagic = 0x52544253;  // "RTBS"
constexpr uint32_t kFileVersion = 1;
constexpr size_t kHeaderSize = 32;

// Longest run one preadv covers; longer runs split. Far below IOV_MAX, and
// comfortably above the buffer pools' fetch windows.
constexpr size_t kMaxVectoredRun = 64;

struct Header {
  uint32_t magic;
  uint32_t version;
  uint64_t page_size;
  uint64_t num_pages;
  uint64_t reserved;
};
static_assert(sizeof(Header) == kHeaderSize);

off_t PageOffset(PageId id, size_t page_size) {
  return static_cast<off_t>(kHeaderSize +
                            static_cast<uint64_t>(id) * page_size);
}

// Full-length positioned read: retries partial transfers and EINTR.
// Returns false on error or premature EOF (short file).
bool PreadFull(int fd, uint8_t* buf, size_t len, off_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t got =
        ::pread(fd, buf + done, len - done, offset + static_cast<off_t>(done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;  // EOF before the page ended.
    done += static_cast<size_t>(got);
  }
  return true;
}

// Full-length positioned write: retries partial transfers and EINTR.
bool PwriteFull(int fd, const uint8_t* buf, size_t len, off_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t put = ::pwrite(fd, buf + done, len - done,
                                 offset + static_cast<off_t>(done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<size_t>(put);
  }
  return true;
}

bool InitialVectored() {
#if defined(RTB_VECTORED_IO_ENABLED)
  if (const char* env = std::getenv("RTB_VECTORED_IO")) {
    if (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
        std::strcmp(env, "scalar") == 0) {
      return false;
    }
  }
  return true;
#else
  return false;
#endif
}

std::atomic<bool>& VectoredSlot() {
  static std::atomic<bool> slot{InitialVectored()};
  return slot;
}

}  // namespace

bool VectoredIoAvailable() {
#if defined(RTB_VECTORED_IO_ENABLED)
  return true;
#else
  return false;
#endif
}

bool VectoredIoActive() {
  return VectoredSlot().load(std::memory_order_relaxed);
}

bool SetVectoredIo(bool on) {
  if (on && !VectoredIoAvailable()) return false;
  VectoredSlot().store(on, std::memory_order_relaxed);
  return true;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Create(
    const std::string& path, size_t page_size) {
  if (page_size == 0) {
    return Status::InvalidArgument("page size must be positive");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot create " + path);
  }
  auto store = std::unique_ptr<FilePageStore>(
      new FilePageStore(path, fd, page_size, 0));
  {
    std::lock_guard<std::mutex> lock(store->mu_);
    RTB_RETURN_IF_ERROR(store->WriteHeader());
    // fsync-on-create (behind the DurableSync seam): a store that claims to
    // exist must survive a crash right after Create, or recovery would find
    // a missing/empty file where the WAL expects a formatted one.
    if (DurableSyncActive() && ::fsync(fd) != 0) {
      return Status::IoError(path + ": fsync after create failed");
    }
  }
  return store;
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError("cannot open " + path);
  }
  Header header;
  if (!PreadFull(fd, reinterpret_cast<uint8_t*>(&header), sizeof(header),
                 0)) {
    ::close(fd);
    return Status::Corruption(path + ": truncated header");
  }
  if (header.magic != kFileMagic) {
    ::close(fd);
    return Status::Corruption(path + ": bad magic");
  }
  if (header.version != kFileVersion) {
    ::close(fd);
    return Status::NotSupported(path + ": unsupported version " +
                                std::to_string(header.version));
  }
  if (header.page_size == 0 || header.num_pages > kInvalidPageId) {
    ::close(fd);
    return Status::Corruption(path + ": implausible header fields");
  }
  return std::unique_ptr<FilePageStore>(new FilePageStore(
      path, fd, static_cast<size_t>(header.page_size),
      static_cast<PageId>(header.num_pages)));
}

FilePageStore::~FilePageStore() {
  Status s = Close();
  if (!s.ok()) {
    // Destructors cannot return the error; surface it loudly instead of
    // losing it. Callers that must not lose data call Close() themselves.
    std::fprintf(stderr,
                 "FilePageStore: final flush failed in destructor "
                 "(call Close() to handle): %s\n",
                 s.ToString().c_str());
    RTB_DCHECK(s.ok());
  }
}

Status FilePageStore::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::OK();
  Status result = WriteHeader();
  if (result.ok() && DurableSyncActive() && ::fsync(fd_) != 0) {
    result = Status::IoError(path_ + ": fsync failed");
  }
  // The descriptor is released even when the flush failed: a half-closed
  // store must not leak the fd, and retrying against it can't help.
  if (::close(fd_) != 0 && result.ok()) {
    result = Status::IoError(path_ + ": close failed");
  }
  fd_ = -1;
  return result;
}

void FilePageStore::Abandon() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

DirectReadSource FilePageStore::direct_read_source() const {
  return DirectReadSource{fd_, kHeaderSize};
}

void FilePageStore::RecordDirectRead(size_t run_pages) {
  // Mirror ReadBatch's accounting: every page is one read; a coalesced run
  // of >= 2 additionally counts as one vectored operation.
  reads_.fetch_add(run_pages, std::memory_order_relaxed);
  if (run_pages >= 2) {
    read_batches_.fetch_add(1, std::memory_order_relaxed);
    batch_pages_.fetch_add(run_pages, std::memory_order_relaxed);
  }
}

Status FilePageStore::WriteHeader() {
  Header header{kFileMagic, kFileVersion, page_size_,
                num_pages_.load(std::memory_order_acquire), 0};
  if (!PwriteFull(fd_, reinterpret_cast<const uint8_t*>(&header),
                  sizeof(header), 0)) {
    return Status::IoError(path_ + ": header write failed");
  }
  return Status::OK();
}

Result<PageId> FilePageStore::Allocate() {
  std::lock_guard<std::mutex> lock(mu_);
  const PageId id = num_pages_.load(std::memory_order_relaxed);
  if (id >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  std::vector<uint8_t> zeros(page_size_, 0);
  if (!PwriteFull(fd_, zeros.data(), page_size_,
                  PageOffset(id, page_size_))) {
    return Status::IoError(path_ + ": page allocation write failed");
  }
  num_pages_.store(id + 1, std::memory_order_release);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return id;
}

Status FilePageStore::Read(PageId id, uint8_t* out) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    return Status::NotFound("read of unallocated page " + std::to_string(id));
  }
  if (!PreadFull(fd_, out, page_size_, PageOffset(id, page_size_))) {
    return Status::IoError(path_ + ": page read failed");
  }
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FilePageStore::ReadBatch(const PageId* ids, size_t n, uint8_t* out) {
  const PageId num_pages = num_pages_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= num_pages) {
      return Status::NotFound("read of unallocated page " +
                              std::to_string(ids[i]));
    }
  }
  [[maybe_unused]] const bool vectored = VectoredIoActive();
  size_t i = 0;
  while (i < n) {
    // Extend the run while the ids stay consecutive: those pages are
    // contiguous on disk (and in `out`), so one vectored read covers them.
    size_t run = 1;
    while (run < kMaxVectoredRun && i + run < n &&
           ids[i + run] == ids[i] + run) {
      ++run;
    }
#if defined(RTB_VECTORED_IO_ENABLED)
    if (vectored && run >= 2) {
      // One iovec per page keeps the accounting page-granular and is the
      // shape a scatter destination (per-frame iovecs) would use; the
      // kernel sees a single contiguous transfer either way.
      uint8_t* dst = out + i * page_size_;
      const size_t total = run * page_size_;
      const off_t base = PageOffset(ids[i], page_size_);
      size_t done = 0;
      while (done < total) {
        struct iovec iov[kMaxVectoredRun];
        const size_t first = done / page_size_;
        const size_t within = done % page_size_;
        int cnt = 0;
        for (size_t p = first; p < run; ++p) {
          const size_t skip = p == first ? within : 0;
          iov[cnt].iov_base = dst + p * page_size_ + skip;
          iov[cnt].iov_len = page_size_ - skip;
          ++cnt;
        }
        const ssize_t got =
            ::preadv(fd_, iov, cnt, base + static_cast<off_t>(done));
        if (got < 0) {
          if (errno == EINTR) continue;
          return Status::IoError(path_ + ": batch page read failed");
        }
        if (got == 0) {
          return Status::IoError(path_ + ": short read in page batch");
        }
        done += static_cast<size_t>(got);
      }
      reads_.fetch_add(run, std::memory_order_relaxed);
      read_batches_.fetch_add(1, std::memory_order_relaxed);
      batch_pages_.fetch_add(run, std::memory_order_relaxed);
    } else
#endif
    {
      for (size_t p = 0; p < run; ++p) {
        if (!PreadFull(fd_, out + (i + p) * page_size_, page_size_,
                       PageOffset(ids[i + p], page_size_))) {
          return Status::IoError(path_ + ": page read failed");
        }
        reads_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    i += run;
  }
  return Status::OK();
}

Status FilePageStore::Write(PageId id, const uint8_t* data) {
  if (id >= num_pages_.load(std::memory_order_acquire)) {
    return Status::NotFound("write of unallocated page " +
                            std::to_string(id));
  }
  if (!PwriteFull(fd_, data, page_size_, PageOffset(id, page_size_))) {
    return Status::IoError(path_ + ": page write failed");
  }
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status FilePageStore::WriteBatch(const PageId* ids, size_t n,
                                 const uint8_t* data) {
  const PageId num_pages = num_pages_.load(std::memory_order_acquire);
  for (size_t i = 0; i < n; ++i) {
    if (ids[i] >= num_pages) {
      return Status::NotFound("write of unallocated page " +
                              std::to_string(ids[i]));
    }
  }
  [[maybe_unused]] const bool vectored = VectoredIoActive();
  size_t i = 0;
  while (i < n) {
    // Same run coalescing as ReadBatch: consecutive ids are contiguous on
    // disk (and in `data`), so one vectored write covers the run.
    size_t run = 1;
    while (run < kMaxVectoredRun && i + run < n &&
           ids[i + run] == ids[i] + run) {
      ++run;
    }
#if defined(RTB_VECTORED_IO_ENABLED)
    if (vectored && run >= 2) {
      const uint8_t* src = data + i * page_size_;
      const size_t total = run * page_size_;
      const off_t base = PageOffset(ids[i], page_size_);
      size_t done = 0;
      while (done < total) {
        struct iovec iov[kMaxVectoredRun];
        const size_t first = done / page_size_;
        const size_t within = done % page_size_;
        int cnt = 0;
        for (size_t p = first; p < run; ++p) {
          const size_t skip = p == first ? within : 0;
          // pwritev never modifies the buffers; the iovec API is just not
          // const-correct.
          iov[cnt].iov_base =
              const_cast<uint8_t*>(src + p * page_size_ + skip);
          iov[cnt].iov_len = page_size_ - skip;
          ++cnt;
        }
        const ssize_t put =
            ::pwritev(fd_, iov, cnt, base + static_cast<off_t>(done));
        if (put < 0) {
          if (errno == EINTR) continue;
          return Status::IoError(path_ + ": batch page write failed");
        }
        done += static_cast<size_t>(put);
      }
      writes_.fetch_add(run, std::memory_order_relaxed);
      write_batches_.fetch_add(1, std::memory_order_relaxed);
      write_batch_pages_.fetch_add(run, std::memory_order_relaxed);
    } else
#endif
    {
      for (size_t p = 0; p < run; ++p) {
        if (!PwriteFull(fd_, data + (i + p) * page_size_, page_size_,
                        PageOffset(ids[i + p], page_size_))) {
          return Status::IoError(path_ + ": page write failed");
        }
        writes_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    i += run;
  }
  return Status::OK();
}

Status FilePageStore::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  RTB_RETURN_IF_ERROR(WriteHeader());
  if (DurableSyncActive() && ::fsync(fd_) != 0) {
    return Status::IoError(path_ + ": fsync failed");
  }
  return Status::OK();
}

Status FilePageStore::ResizeToPages(PageId n) {
  const PageId current = num_pages_.load(std::memory_order_acquire);
  if (n == current) return Status::OK();
  if (n < current) {
    // Undo of uncommitted allocations: pages past the committed count hold
    // garbage from a batch that never committed; cut them off.
    if (::ftruncate(fd_, PageOffset(n, page_size_)) != 0) {
      return Status::IoError(path_ + ": recovery truncate failed");
    }
  } else {
    // Committed allocations whose zero-fill write may not have completed:
    // extend with zeros, then the committed after-images overwrite them.
    std::vector<uint8_t> zeros(page_size_, 0);
    for (PageId id = current; id < n; ++id) {
      if (!PwriteFull(fd_, zeros.data(), page_size_,
                      PageOffset(id, page_size_))) {
        return Status::IoError(path_ + ": recovery page extension failed");
      }
    }
  }
  num_pages_.store(n, std::memory_order_release);
  return Status::OK();
}

Result<std::unique_ptr<FilePageStore>> FilePageStore::OpenWithRecovery(
    const std::string& path, const std::string& wal_path,
    WalRecoveryReport* report) {
  WalRecoveryReport local;
  WalRecoveryReport& rep = report != nullptr ? *report : local;
  rep = WalRecoveryReport{};
  RTB_ASSIGN_OR_RETURN(std::unique_ptr<FilePageStore> store, Open(path));

  Result<std::unique_ptr<WalReader>> reader = WalReader::Open(wal_path);
  if (!reader.ok()) {
    if (reader.status().code() == StatusCode::kNotFound) {
      return store;  // No log, nothing to recover.
    }
    return reader.status();
  }

  // Scan the whole valid prefix. Checkpoints truncate the file when they
  // are written, so the last checkpoint is normally record 0 — but recovery
  // replays from the *last* one regardless, which also covers a log that
  // somehow accreted several.
  std::vector<WalRecord> records;
  WalRecord rec;
  size_t restart = 0;  // Index of the record after the last checkpoint.
  Lsn last_commit = kNoLsn;
  // Baseline committed page count: the on-disk header (durable as of the
  // last store Sync), overridden by the last checkpoint, overridden by the
  // last commit.
  uint64_t committed_pages = store->num_pages();
  while ((*reader)->Next(&rec)) {
    if (rec.type == WalRecordType::kCheckpoint) {
      restart = records.size() + 1;
      committed_pages = rec.num_pages;
    } else if (rec.type == WalRecordType::kCommit) {
      last_commit = rec.lsn;
      committed_pages = rec.num_pages;
    }
    records.push_back(std::move(rec));
  }
  rep.wal_found = true;
  rep.records_scanned = records.size();
  rep.tail_torn = (*reader)->torn_tail();
  rep.last_commit_lsn = last_commit;

  if (committed_pages > kInvalidPageId) {
    return Status::Corruption(wal_path + ": implausible committed page count");
  }
  {
    std::lock_guard<std::mutex> lock(store->mu_);
    RTB_RETURN_IF_ERROR(
        store->ResizeToPages(static_cast<PageId>(committed_pages)));
  }
  // Redo: committed after-images in LSN (= file) order. Images the store
  // already has are rewritten — idempotent and simpler than tracking page
  // LSNs on disk.
  const size_t stride = store->page_size();
  for (size_t i = restart; i < records.size(); ++i) {
    const WalRecord& r = records[i];
    if (r.type != WalRecordType::kPageImage || r.lsn > last_commit) continue;
    if (r.payload.size() != stride || r.page_id >= committed_pages) {
      return Status::Corruption(wal_path + ": malformed page image record");
    }
    RTB_RETURN_IF_ERROR(store->Write(r.page_id, r.payload.data()));
    ++rep.redo_pages;
  }
  // Undo: the uncommitted suffix's before-images in reverse order. A page
  // dirtied, stolen and re-dirtied logs several before-images; reverse
  // application makes the earliest (the committed content) land last.
  for (size_t i = records.size(); i > restart; --i) {
    const WalRecord& r = records[i - 1];
    if (r.type != WalRecordType::kBeforeImage || r.lsn <= last_commit) {
      continue;
    }
    if (r.payload.size() != stride) {
      return Status::Corruption(wal_path + ": malformed before-image record");
    }
    if (r.page_id >= committed_pages) continue;  // Truncated away above.
    RTB_RETURN_IF_ERROR(store->Write(r.page_id, r.payload.data()));
    ++rep.undo_pages;
  }
  // The recovered state must be durable before the log that produced it is
  // discarded.
  RTB_RETURN_IF_ERROR(store->Sync());
  {
    const int wal_fd = ::open(wal_path.c_str(), O_WRONLY);
    if (wal_fd < 0) {
      return Status::IoError("cannot reopen wal for truncation: " + wal_path);
    }
    struct stat st;
    if (::fstat(wal_fd, &st) == 0 &&
        static_cast<uint64_t>(st.st_size) > (*reader)->valid_bytes()) {
      rep.torn_bytes =
          static_cast<uint64_t>(st.st_size) - (*reader)->valid_bytes();
    }
    const bool truncated = ::ftruncate(wal_fd, 0) == 0;
    const bool synced = !DurableSyncActive() || ::fsync(wal_fd) == 0;
    ::close(wal_fd);
    if (!truncated || !synced) {
      return Status::IoError(wal_path + ": wal reset after recovery failed");
    }
  }
  // Replay I/O is recovery cost, not workload cost; runs opened through
  // recovery report the same counters a clean open would.
  store->ResetStats();
  return store;
}

}  // namespace rtb::storage
