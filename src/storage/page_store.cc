#include "storage/page_store.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>

namespace rtb::storage {

namespace {

bool InitialDurableSync() {
  if (const char* env = std::getenv("RTB_NO_FSYNC")) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "true") == 0) {
      return false;
    }
  }
  return true;
}

std::atomic<bool>& DurableSyncSlot() {
  static std::atomic<bool> slot{InitialDurableSync()};
  return slot;
}

}  // namespace

bool DurableSyncActive() {
  return DurableSyncSlot().load(std::memory_order_relaxed);
}

void SetDurableSync(bool on) {
  DurableSyncSlot().store(on, std::memory_order_relaxed);
}

MemPageStore::MemPageStore(size_t page_size) : page_size_(page_size) {
  RTB_CHECK(page_size > 0);
}

Status PageStore::ReadBatch(const PageId* ids, size_t n, uint8_t* out) {
  const size_t stride = page_size();
  for (size_t i = 0; i < n; ++i) {
    RTB_RETURN_IF_ERROR(Read(ids[i], out + i * stride));
  }
  return Status::OK();
}

Status PageStore::WriteBatch(const PageId* ids, size_t n,
                             const uint8_t* data) {
  const size_t stride = page_size();
  for (size_t i = 0; i < n; ++i) {
    RTB_RETURN_IF_ERROR(Write(ids[i], data + i * stride));
  }
  return Status::OK();
}

Result<PageId> MemPageStore::Allocate() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (pages_.size() >= kInvalidPageId) {
    return Status::ResourceExhausted("page id space exhausted");
  }
  pages_.emplace_back(page_size_, uint8_t{0});
  allocations_.fetch_add(1, std::memory_order_relaxed);
  return static_cast<PageId>(pages_.size() - 1);
}

Status MemPageStore::Read(PageId id, uint8_t* out) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::NotFound("read of unallocated page " + std::to_string(id));
  }
  std::memcpy(out, pages_[id].data(), page_size_);
  reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status MemPageStore::Write(PageId id, const uint8_t* data) {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size()) {
    return Status::NotFound("write of unallocated page " +
                            std::to_string(id));
  }
  std::memcpy(pages_[id].data(), data, page_size_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

}  // namespace rtb::storage
