// ShardedBufferPool: a thread-safe PageCache built from N lock-striped
// BufferPool shards.
//
// Pages are hashed by PageId onto a shard; each shard owns an independent
// slice of the frame budget, its own replacement policy, and its own
// BufferStats, all guarded by one mutex per shard. A fetch therefore takes
// exactly one uncontended lock in the common case, and two threads touching
// pages on different shards never serialize. AggregateStats() merges the
// per-shard counters into the single view the experiments report.
//
// Semantics vs. the single-threaded BufferPool:
//   * Replacement is per-shard LRU (or any PolicyKind), not global LRU; a
//     page can be evicted from its full shard while another shard has free
//     frames. With uniform page hashing and >= ~8 frames per shard the
//     measured hit rate tracks global LRU closely (see DESIGN.md §7).
//   * With num_shards == 1 the pool degenerates to a mutex around one
//     BufferPool, so single-shard runs reproduce the serial pool's counts
//     exactly.
//   * PageGuard is thread-safe here: guards may be released on any thread;
//     pin counts are atomic and the release re-takes the owning shard lock.

#ifndef RTB_STORAGE_SHARDED_BUFFER_POOL_H_
#define RTB_STORAGE_SHARDED_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_store.h"
#include "storage/replacement.h"
#include "util/result.h"
#include "util/status.h"

namespace rtb::storage {

/// Thread-safe, lock-striped page cache. The store must itself be
/// thread-safe (MemPageStore and FilePageStore are).
class ShardedBufferPool final : public PageCache {
 public:
  struct Options {
    /// Number of lock stripes; rounded up to a power of two and capped so
    /// every shard keeps at least one frame. 0 picks a default sized for
    /// moderate thread counts (kDefaultShards, capped by capacity).
    size_t num_shards = 0;
    /// Replacement policy instantiated per shard.
    PolicyKind policy = PolicyKind::kLru;
    /// Seed for randomized policies (shard i uses seed + i).
    uint64_t seed = 0;
  };

  static constexpr size_t kDefaultShards = 16;

  /// The pool does not own `store`; it must outlive the pool.
  ShardedBufferPool(PageStore* store, size_t capacity, Options options);

  /// Convenience: per-shard LRU, the paper's policy. `num_shards == 0`
  /// picks the default stripe count.
  static std::unique_ptr<ShardedBufferPool> MakeLru(PageStore* store,
                                                    size_t capacity,
                                                    size_t num_shards = 0);

  ShardedBufferPool(const ShardedBufferPool&) = delete;
  ShardedBufferPool& operator=(const ShardedBufferPool&) = delete;

  size_t capacity() const override { return capacity_; }
  size_t page_size() const override { return store_->page_size(); }
  size_t num_shards() const { return shards_.size(); }

  Result<PageGuard> Fetch(PageId id) override;
  Result<PageGuard> FetchMutable(PageId id) override;

  /// Takes one shard-lock acquisition per run of consecutive ids hashing to
  /// the same shard, and routes each run's misses through one store
  /// ReadBatch under that lock. SplitMix64 routing scatters the executor's
  /// page-id-sorted windows, so same-shard runs of length one are the
  /// common case here — the syscall-coalescing win of ReadBatch belongs to
  /// the serial BufferPool; this override's win remains the amortized lock
  /// churn under contention.
  Result<std::vector<PageGuard>> FetchBatch(const PageId* ids,
                                            size_t count) override;

  Result<PageGuard> NewPage() override;

  Status PinPermanently(PageId id) override;
  Status UnpinPermanently(PageId id) override;
  size_t num_permanent_pins() const override;

  Status FlushAll() override;
  Status EvictAll() override;

  /// Like BufferPool::Close: a WAL-attached pool checkpoints on the way
  /// out so the log does not outlive it with stale content.
  Status Close() override {
    if (wal_ != nullptr) return WalCheckpoint();
    return FlushAll();
  }

  /// WAL surface: the writer is shared (it is internally synchronized);
  /// each shard logs its own images under its own lock, and a commit or
  /// checkpoint writes ONE record for the whole pool — batch atomicity is
  /// pool-wide, not per-shard.
  void AttachWal(WalWriter* wal) override;
  WalWriter* attached_wal() const override { return wal_; }
  Status WalCommit() override;
  Status WalCheckpoint() override;
  void DiscardAll() override;

  bool Contains(PageId id) const override;

  BufferStats AggregateStats() const override;
  void ResetStats() override;

  /// Per-shard counters (same order as shard ids), for tests and the
  /// scaling bench.
  std::vector<BufferStats> ShardStats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unique_ptr<BufferPool> pool;
  };

  size_t ShardOf(PageId id) const {
    // SplitMix64 finalizer: consecutive page ids (an R-tree level laid out
    // contiguously) must not cluster on one stripe.
    uint64_t z = static_cast<uint64_t>(id) + 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return static_cast<size_t>((z ^ (z >> 31)) & shard_mask_);
  }

  void Unpin(const Frame& frame, bool dirty) override;

  PageStore* store_;
  WalWriter* wal_ = nullptr;  // Not owned; null = WAL off.
  size_t capacity_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_SHARDED_BUFFER_POOL_H_
