#include "storage/sharded_buffer_pool.h"

#include <algorithm>
#include <utility>

#include "storage/wal.h"

namespace rtb::storage {

namespace {

// Largest power of two <= n (n >= 1).
size_t FloorPow2(size_t n) {
  size_t p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

}  // namespace

ShardedBufferPool::ShardedBufferPool(PageStore* store, size_t capacity,
                                     Options options)
    : store_(store), capacity_(capacity) {
  RTB_CHECK(store_ != nullptr);
  RTB_CHECK(capacity_ > 0);
  size_t n = options.num_shards == 0 ? kDefaultShards : options.num_shards;
  // Power-of-two stripe count (for mask routing), at least one frame per
  // shard.
  n = FloorPow2(std::max<size_t>(1, std::min(n, capacity_)));
  shard_mask_ = n - 1;
  shards_.reserve(n);
  const size_t base = capacity_ / n;
  const size_t rem = capacity_ % n;
  for (size_t i = 0; i < n; ++i) {
    const size_t shard_capacity = base + (i < rem ? 1 : 0);
    auto shard = std::make_unique<Shard>();
    shard->pool = std::make_unique<BufferPool>(
        store_, shard_capacity,
        MakePolicy(options.policy, shard_capacity, options.seed + i));
    shards_.push_back(std::move(shard));
  }
}

std::unique_ptr<ShardedBufferPool> ShardedBufferPool::MakeLru(
    PageStore* store, size_t capacity, size_t num_shards) {
  Options options;
  options.num_shards = num_shards;
  return std::make_unique<ShardedBufferPool>(store, capacity, options);
}

Result<PageGuard> ShardedBufferPool::Fetch(PageId id) {
  Shard& s = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(s.mu);
  RTB_ASSIGN_OR_RETURN(FrameId f, s.pool->PinPage(id));
  return PageGuard(this, Frame{id, s.pool->FrameData(f), f},
                   /*mark_dirty=*/false);
}

Result<PageGuard> ShardedBufferPool::FetchMutable(PageId id) {
  Shard& s = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(s.mu);
  RTB_ASSIGN_OR_RETURN(FrameId f, s.pool->PinPage(id));
  return PageGuard(this, Frame{id, s.pool->FrameData(f), f},
                   /*mark_dirty=*/true);
}

Result<std::vector<PageGuard>> ShardedBufferPool::FetchBatch(
    const PageId* ids, size_t count) {
  std::vector<PageGuard> guards;
  guards.reserve(count);
  std::vector<BufferPool::BatchEntry> run;  // Reused across runs.
  Status error = Status::OK();
  size_t i = 0;
  while (i < count && error.ok()) {
    // One lock acquisition per run of consecutive ids on the same shard.
    // Within the run the misses are staged (pinned, unread) and then filled
    // through one store ReadBatch, all under the shard lock, so no other
    // thread ever observes an unfilled frame.
    const size_t shard = ShardOf(ids[i]);
    Shard& s = *shards_[shard];
    run.clear();
    std::lock_guard<std::mutex> lock(s.mu);
    for (; i < count && ShardOf(ids[i]) == shard; ++i) {
      bool pending = false;
      Result<FrameId> f = s.pool->PinPageNoRead(ids[i], &pending);
      if (!f.ok()) {
        error = f.status();
        break;
      }
      run.push_back(BufferPool::BatchEntry{ids[i], *f, pending});
    }
    if (error.ok()) {
      error = s.pool->ReadPendingFrames(run.data(), run.size());
    }
    if (!error.ok()) {
      // Unwind this run entirely under its own lock, in reverse so a
      // repeated id's extra pin on a pending frame drops before the install
      // is rolled back. The raw pins never became guards, so no guard
      // release can re-take the mutex held here. Guards from earlier runs
      // (other shards) are released by the clear below, outside any lock.
      for (size_t k = run.size(); k > 0; --k) {
        const BufferPool::BatchEntry& e = run[k - 1];
        if (e.pending) {
          s.pool->UninstallPending(e.frame);
        } else {
          s.pool->Unpin(Frame{e.id, s.pool->FrameData(e.frame), e.frame},
                        /*dirty=*/false);
        }
      }
      break;
    }
    for (const BufferPool::BatchEntry& e : run) {
      guards.emplace_back(this, Frame{e.id, s.pool->FrameData(e.frame), e.frame},
                          /*mark_dirty=*/false);
    }
  }
  if (!error.ok()) {
    guards.clear();  // Outside any shard lock; safe to unpin.
    return error;
  }
  return guards;
}

Result<PageGuard> ShardedBufferPool::NewPage() {
  // Allocate centrally (the store is thread-safe), then install the page in
  // the shard its id hashes to.
  RTB_ASSIGN_OR_RETURN(PageId id, store_->Allocate());
  Shard& s = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(s.mu);
  RTB_ASSIGN_OR_RETURN(FrameId f, s.pool->InstallNewPage(id));
  return PageGuard(this, Frame{id, s.pool->FrameData(f), f},
                   /*mark_dirty=*/true);
}

void ShardedBufferPool::Unpin(const Frame& frame, bool dirty) {
  // The guard's frame_id indexes into the owning shard's pool; route by the
  // page id's shard hash, as Fetch did.
  Shard& s = *shards_[ShardOf(frame.page_id)];
  std::lock_guard<std::mutex> lock(s.mu);
  s.pool->Unpin(frame, dirty);
}

Status ShardedBufferPool::PinPermanently(PageId id) {
  Shard& s = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.pool->PinPermanently(id);
}

Status ShardedBufferPool::UnpinPermanently(PageId id) {
  Shard& s = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.pool->UnpinPermanently(id);
}

size_t ShardedBufferPool::num_permanent_pins() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->pool->num_permanent_pins();
  }
  return total;
}

Status ShardedBufferPool::FlushAll() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RTB_RETURN_IF_ERROR(shard->pool->FlushAll());
  }
  return Status::OK();
}

Status ShardedBufferPool::EvictAll() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    RTB_RETURN_IF_ERROR(shard->pool->EvictAll());
  }
  return Status::OK();
}

void ShardedBufferPool::AttachWal(WalWriter* wal) {
  wal_ = wal;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pool->AttachWal(wal);
  }
}

Status ShardedBufferPool::WalCommit() {
  if (wal_ == nullptr) return Status::OK();
  // Image every shard's modified pages first, then one commit record
  // covers the whole pool's batch.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pool->WalLogDirtyImages();
  }
  RTB_ASSIGN_OR_RETURN(Lsn lsn, wal_->Commit(store_->num_pages()));
  (void)lsn;
  return Status::OK();
}

Status ShardedBufferPool::WalCheckpoint() {
  if (wal_ == nullptr) return Status::OK();
  RTB_RETURN_IF_ERROR(FlushAll());
  RTB_RETURN_IF_ERROR(store_->Sync());
  return wal_->Checkpoint(store_->num_pages());
}

void ShardedBufferPool::DiscardAll() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pool->DiscardAll();
  }
}

bool ShardedBufferPool::Contains(PageId id) const {
  const Shard& s = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(s.mu);
  return s.pool->Contains(id);
}

BufferStats ShardedBufferPool::AggregateStats() const {
  BufferStats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->pool->stats();
  }
  return total;
}

void ShardedBufferPool::ResetStats() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->pool->ResetStats();
  }
}

std::vector<BufferStats> ShardedBufferPool::ShardStats() const {
  std::vector<BufferStats> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(shard->pool->stats());
  }
  return out;
}

}  // namespace rtb::storage
