#include "storage/replacement.h"

#include "util/macros.h"

namespace rtb::storage {

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

LruPolicy::LruPolicy(size_t capacity)
    : order_(capacity), entries_(capacity) {}

void LruPolicy::RecordAccess(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (e.tracked) {
    order_.MoveToFront(frame);
  } else {
    order_.PushFront(frame);
    e.tracked = true;
  }
}

void LruPolicy::SetEvictable(FrameId frame, bool evictable) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  RTB_DCHECK(e.tracked);
  if (e.evictable == evictable) return;
  e.evictable = evictable;
  num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
}

bool LruPolicy::Evict(FrameId* victim) {
  for (FrameId f = order_.back(); f != detail::FrameList::kNil;
       f = order_.Prev(f)) {
    if (entries_[f].evictable) {
      *victim = f;
      Remove(f);
      return true;
    }
  }
  return false;
}

void LruPolicy::Remove(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (!e.tracked) return;
  if (e.evictable) --num_evictable_;
  order_.Erase(frame);
  e = Entry{};
}

// ---------------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------------

FifoPolicy::FifoPolicy(size_t capacity)
    : order_(capacity), entries_(capacity) {}

void FifoPolicy::RecordAccess(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (e.tracked) return;  // Position fixed at first insertion.
  order_.PushBack(frame);
  e.tracked = true;
}

void FifoPolicy::SetEvictable(FrameId frame, bool evictable) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  RTB_DCHECK(e.tracked);
  if (e.evictable == evictable) return;
  e.evictable = evictable;
  num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
}

bool FifoPolicy::Evict(FrameId* victim) {
  for (FrameId f = order_.front(); f != detail::FrameList::kNil;
       f = order_.Next(f)) {
    if (entries_[f].evictable) {
      *victim = f;
      Remove(f);
      return true;
    }
  }
  return false;
}

void FifoPolicy::Remove(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (!e.tracked) return;
  if (e.evictable) --num_evictable_;
  order_.Erase(frame);
  e = Entry{};
}

// ---------------------------------------------------------------------------
// CLOCK
// ---------------------------------------------------------------------------

ClockPolicy::ClockPolicy(size_t capacity) : entries_(capacity) {}

void ClockPolicy::RecordAccess(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  entries_[frame].tracked = true;
  entries_[frame].referenced = true;
}

void ClockPolicy::SetEvictable(FrameId frame, bool evictable) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  RTB_DCHECK(e.tracked);
  if (e.evictable == evictable) return;
  e.evictable = evictable;
  num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
}

bool ClockPolicy::Evict(FrameId* victim) {
  if (num_evictable_ == 0) return false;
  // At most two sweeps: the first clears reference bits, the second must
  // find an unreferenced evictable frame.
  for (size_t step = 0; step < 2 * entries_.size(); ++step) {
    Entry& e = entries_[hand_];
    FrameId current = static_cast<FrameId>(hand_);
    hand_ = (hand_ + 1) % entries_.size();
    if (!e.tracked || !e.evictable) continue;
    if (e.referenced) {
      e.referenced = false;
      continue;
    }
    *victim = current;
    Remove(current);
    return true;
  }
  return false;
}

void ClockPolicy::Remove(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (!e.tracked) return;
  if (e.evictable) --num_evictable_;
  e = Entry{};
}

// ---------------------------------------------------------------------------
// LFU
// ---------------------------------------------------------------------------

LfuPolicy::LfuPolicy(size_t capacity) : entries_(capacity) {}

void LfuPolicy::RecordAccess(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  e.tracked = true;
  ++e.frequency;
  e.last_access = ++clock_;
}

void LfuPolicy::SetEvictable(FrameId frame, bool evictable) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  RTB_DCHECK(e.tracked);
  if (e.evictable == evictable) return;
  e.evictable = evictable;
  num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
}

bool LfuPolicy::Evict(FrameId* victim) {
  bool found = false;
  FrameId best = 0;
  for (FrameId f = 0; f < entries_.size(); ++f) {
    const Entry& e = entries_[f];
    if (!e.tracked || !e.evictable) continue;
    if (!found || e.frequency < entries_[best].frequency ||
        (e.frequency == entries_[best].frequency &&
         e.last_access < entries_[best].last_access)) {
      best = f;
      found = true;
    }
  }
  if (!found) return false;
  *victim = best;
  Remove(best);
  return true;
}

void LfuPolicy::Remove(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (!e.tracked) return;
  if (e.evictable) --num_evictable_;
  e = Entry{};
}

// ---------------------------------------------------------------------------
// LRU-K
// ---------------------------------------------------------------------------

LruKPolicy::LruKPolicy(size_t capacity, size_t k)
    : entries_(capacity), k_(k) {
  RTB_CHECK(k_ >= 1);
}

void LruKPolicy::RecordAccess(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  e.tracked = true;
  if (e.history.size() < k_) e.history.resize(k_, 0);
  e.history[e.next] = ++clock_;
  e.next = (e.next + 1) % k_;
  if (e.count < k_) ++e.count;
}

void LruKPolicy::SetEvictable(FrameId frame, bool evictable) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  RTB_DCHECK(e.tracked);
  if (e.evictable == evictable) return;
  e.evictable = evictable;
  num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
}

bool LruKPolicy::Evict(FrameId* victim) {
  bool found = false;
  FrameId best = 0;
  bool best_infinite = false;
  uint64_t best_key = 0;
  for (FrameId f = 0; f < entries_.size(); ++f) {
    const Entry& e = entries_[f];
    if (!e.tracked || !e.evictable) continue;
    const bool infinite = e.count < k_;
    // Frames with < k accesses are preferred victims; ties (and ties among
    // full-history frames) break by the older relevant timestamp.
    const uint64_t key = infinite ? e.MostRecent(k_) : e.KthMostRecent(k_);
    bool better;
    if (!found) {
      better = true;
    } else if (infinite != best_infinite) {
      better = infinite;
    } else {
      better = key < best_key;
    }
    if (better) {
      best = f;
      best_infinite = infinite;
      best_key = key;
      found = true;
    }
  }
  if (!found) return false;
  *victim = best;
  Remove(best);
  return true;
}

void LruKPolicy::Remove(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (!e.tracked) return;
  if (e.evictable) --num_evictable_;
  e = Entry{};
}

// ---------------------------------------------------------------------------
// RANDOM
// ---------------------------------------------------------------------------

RandomPolicy::RandomPolicy(size_t capacity, uint64_t seed)
    : entries_(capacity), rng_(seed) {}

void RandomPolicy::RecordAccess(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  entries_[frame].tracked = true;
}

void RandomPolicy::SetEvictable(FrameId frame, bool evictable) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  RTB_DCHECK(e.tracked);
  if (e.evictable == evictable) return;
  e.evictable = evictable;
  num_evictable_ += evictable ? 1 : static_cast<size_t>(-1);
}

bool RandomPolicy::Evict(FrameId* victim) {
  if (num_evictable_ == 0) return false;
  uint64_t skip = rng_.UniformInt(num_evictable_);
  for (FrameId f = 0; f < entries_.size(); ++f) {
    const Entry& e = entries_[f];
    if (!e.tracked || !e.evictable) continue;
    if (skip == 0) {
      *victim = f;
      Remove(f);
      return true;
    }
    --skip;
  }
  return false;
}

void RandomPolicy::Remove(FrameId frame) {
  RTB_DCHECK(frame < entries_.size());
  Entry& e = entries_[frame];
  if (!e.tracked) return;
  if (e.evictable) --num_evictable_;
  e = Entry{};
}

// ---------------------------------------------------------------------------
// Factory
// ---------------------------------------------------------------------------

std::unique_ptr<ReplacementPolicy> MakePolicy(PolicyKind kind, size_t capacity,
                                              uint64_t seed) {
  switch (kind) {
    case PolicyKind::kLru:
      return std::make_unique<LruPolicy>(capacity);
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>(capacity);
    case PolicyKind::kClock:
      return std::make_unique<ClockPolicy>(capacity);
    case PolicyKind::kLfu:
      return std::make_unique<LfuPolicy>(capacity);
    case PolicyKind::kRandom:
      return std::make_unique<RandomPolicy>(capacity, seed);
    case PolicyKind::kLruK:
      return std::make_unique<LruKPolicy>(capacity, /*k=*/2);
  }
  RTB_CHECK(false);
  return nullptr;
}

std::string_view PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kLru:
      return "LRU";
    case PolicyKind::kFifo:
      return "FIFO";
    case PolicyKind::kClock:
      return "CLOCK";
    case PolicyKind::kLfu:
      return "LFU";
    case PolicyKind::kRandom:
      return "RANDOM";
    case PolicyKind::kLruK:
      return "LRU-K";
  }
  return "?";
}

}  // namespace rtb::storage
