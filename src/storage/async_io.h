// AsyncReadEngine: background read submission over PageStore, the engine
// behind the buffer pools' staged multi-gets (BufferPool::BeginFetchBatch /
// FinishFetchBatch).
//
// A caller submits one job — a set of (page id, destination pointer) pairs
// against one store — and gets back a ticket; the pages are read on an
// engine worker thread while the caller keeps computing, and Wait() on the
// ticket blocks only if the job has not finished yet. The batch executor
// uses this for double-buffered frontier windows: while the scan kernel
// processes window N's pinned pages, window N+1's miss list is already in
// flight.
//
// Backends:
//   * thread pool (always compiled with the engine): workers serve a job by
//     sorting its requests by page id and routing them through the store
//     exactly like BufferPool::ReadPendingFrames — one ReadBatch through a
//     worker-local staging buffer when the store coalesces
//     (CoalescesBatchReads()), per-page Read straight into the
//     destinations otherwise — so IoStats counts are identical to the
//     synchronous path.
//   * io_uring (RTB_IO_URING CMake option, runtime-detected): for stores
//     exposing a direct-read descriptor (PageStore::direct_read_source();
//     FilePageStore does), runs of consecutive pages become IORING_OP_READV
//     submissions against the raw fd, with scatter iovecs pointing at the
//     destination frames — no staging copy at all. Detection happens on
//     first use; a kernel without io_uring (or a seccomp filter blocking
//     it) silently falls back to the thread-pool path. Accounting goes
//     through PageStore::RecordDirectRead so IoStats still match.
//
// Selection mirrors the RTB_VECTORED_IO / RTB_SIMD seams: the RTB_ASYNC_IO
// CMake option gates compilation, the RTB_ASYNC_IO environment variable
// sets the initial state (1|on|threadpool enable, uring additionally
// requests the io_uring backend, 0|off|sync disable — the default), and
// SetAsyncIo() switches at runtime. Read-ahead is opt-in: with the seam off
// nothing changes anywhere — BeginFetchBatch degrades to a synchronous
// FetchBatch and no engine thread is ever started.
//
// Thread safety: Submit/Wait/stats may be called from any thread. Each
// ticket must be waited (or the submitting PendingBatch abandoned, which
// waits internally) exactly once. The engine only ever writes the
// destination bytes of a job's requests; callers guarantee destinations
// stay valid and unread until Wait returns (the buffer pools pin the
// frames for exactly this reason).

#ifndef RTB_STORAGE_ASYNC_IO_H_
#define RTB_STORAGE_ASYNC_IO_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace rtb::storage {

/// True when this binary was compiled with the async engine
/// (-DRTB_ASYNC_IO=ON, the default).
bool AsyncIoAvailable();

/// Whether the buffer pools currently stage fetches through the engine.
/// Initially off unless the RTB_ASYNC_IO environment variable
/// (1|on|threadpool|uring) enables it.
bool AsyncIoActive();

/// Enables or disables async read-ahead for subsequent BeginFetchBatch
/// calls. Returns false (and changes nothing) when enabling is requested
/// but the binary lacks the engine. Disabling always succeeds.
bool SetAsyncIo(bool on);

/// Name of the backend jobs are currently served by: "sync" (seam off),
/// "threadpool", or "io_uring" (requested via RTB_ASYNC_IO=uring and
/// runtime-detected; direct reads still fall back to the thread pool for
/// stores without a direct-read descriptor).
const char* AsyncIoBackendName();

/// Cumulative engine counters (process-wide; snapshot like IoStats).
/// `waits_ready` counts Wait() calls that found their job already complete
/// — reads that fully overlapped with caller compute — and `waits_blocked`
/// the ones that had to block; their ratio is the overlap the double
/// buffering achieved.
struct AsyncIoStats {
  uint64_t jobs = 0;           // Jobs submitted.
  uint64_t pages = 0;          // Pages covered by those jobs.
  uint64_t waits_ready = 0;    // Wait() found the job complete.
  uint64_t waits_blocked = 0;  // Wait() had to block.
  uint64_t max_inflight = 0;   // Peak jobs in flight (high-water mark).
  uint64_t uring_jobs = 0;     // Jobs served by the io_uring backend.

  double OverlapRatio() const {
    const uint64_t waits = waits_ready + waits_blocked;
    return waits == 0 ? 0.0
                      : static_cast<double>(waits_ready) /
                            static_cast<double>(waits);
  }

  /// Counter-wise difference against an earlier snapshot (high-water
  /// `max_inflight` is carried over, not subtracted).
  AsyncIoStats Delta(const AsyncIoStats& before) const {
    AsyncIoStats d;
    d.jobs = jobs - before.jobs;
    d.pages = pages - before.pages;
    d.waits_ready = waits_ready - before.waits_ready;
    d.waits_blocked = waits_blocked - before.waits_blocked;
    d.max_inflight = max_inflight;
    d.uring_jobs = uring_jobs - before.uring_jobs;
    return d;
  }
};

/// The process-wide read engine. Worker threads start lazily on the first
/// Submit and are joined at process exit.
class AsyncReadEngine {
 public:
  /// One page to read: `id` from the job's store into `dst`
  /// (store->page_size() bytes, caller-owned, unaliased across the job).
  struct Request {
    PageId id = kInvalidPageId;
    uint8_t* dst = nullptr;
  };

  /// Ticket for a submitted job. Every ticket must be passed to Wait()
  /// exactly once.
  using JobId = uint64_t;

  static AsyncReadEngine& Instance();

  AsyncReadEngine(const AsyncReadEngine&) = delete;
  AsyncReadEngine& operator=(const AsyncReadEngine&) = delete;

  /// Enqueues reads of `reqs` against `store`. Submission never fails; any
  /// read error surfaces from Wait(). `store` and every destination must
  /// stay valid until Wait returns.
  JobId Submit(PageStore* store, std::vector<Request> reqs);

  /// Blocks until the job completes and returns its read status (the first
  /// error, with the job's remaining reads abandoned — matching a failed
  /// ReadBatch, after which the destination contents are unspecified).
  Status Wait(JobId id);

  AsyncIoStats stats() const;
  void ResetStats();

 private:
  struct Job {
    JobId id = 0;
    PageStore* store = nullptr;
    std::vector<Request> reqs;
  };

  AsyncReadEngine();
  ~AsyncReadEngine();

  void WorkerLoop();
  Status Execute(Job& job, std::vector<PageId>* ids,
                 std::vector<uint8_t>* scratch, bool* used_uring);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // Signals queued work / shutdown.
  std::condition_variable done_cv_;  // Signals a job completion.
  std::deque<Job> queue_;
  std::unordered_map<JobId, Status> done_;
  JobId next_id_ = 1;
  uint64_t inflight_ = 0;
  bool stop_ = false;
  AsyncIoStats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_ASYNC_IO_H_
