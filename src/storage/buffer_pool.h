// BufferPool: a fixed number of in-memory page frames in front of a
// PageStore, with a pluggable replacement policy and support for pinning
// pages permanently (used to pin the top levels of an R-tree, Section 3.3 /
// 5.5 of the paper).
//
// The pool is single-threaded by design: the paper's workload is a serial
// query stream, and keeping the pool lock-free makes the disk-access counts
// exactly reproducible.

#ifndef RTB_STORAGE_BUFFER_POOL_H_
#define RTB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"
#include "storage/replacement.h"
#include "util/result.h"
#include "util/status.h"

namespace rtb::storage {

/// Hit/miss counters for a BufferPool.
struct BufferStats {
  uint64_t requests = 0;    // Logical page requests.
  uint64_t hits = 0;        // Served from the pool.
  uint64_t misses = 0;      // Required a disk read.
  uint64_t evictions = 0;   // Pages pushed out.
  uint64_t writebacks = 0;  // Dirty pages written on eviction/flush.

  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }
};

/// A page held in the pool. Returned by Fetch; the caller must Unpin it
/// (directly or via PageGuard) when done.
struct Frame {
  PageId page_id = kInvalidPageId;
  uint8_t* data = nullptr;
};

class BufferPool;

/// RAII unpinning wrapper around a fetched frame.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Frame frame, bool mark_dirty)
      : pool_(pool), frame_(frame), dirty_(mark_dirty) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  ~PageGuard() { Release(); }

  /// Unpins now (idempotent).
  void Release();

  PageId page_id() const { return frame_.page_id; }
  const uint8_t* data() const { return frame_.data; }
  uint8_t* mutable_data() {
    dirty_ = true;
    return frame_.data;
  }
  bool valid() const { return pool_ != nullptr; }

 private:
  BufferPool* pool_ = nullptr;
  Frame frame_;
  bool dirty_ = false;
};

/// Buffer pool of `capacity` frames over `store`.
class BufferPool {
 public:
  /// The pool does not own `store`; it must outlive the pool.
  BufferPool(PageStore* store, size_t capacity,
             std::unique_ptr<ReplacementPolicy> policy);

  /// Convenience: LRU pool, the paper's configuration.
  static std::unique_ptr<BufferPool> MakeLru(PageStore* store,
                                             size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  size_t capacity() const { return capacity_; }
  size_t page_size() const { return store_->page_size(); }

  /// Fetches a page, reading from the store on a miss. The returned guard
  /// keeps the page pinned until released.
  Result<PageGuard> Fetch(PageId id);

  /// Fetches for writing; the page is marked dirty.
  Result<PageGuard> FetchMutable(PageId id);

  /// Allocates a fresh page in the store and returns it pinned and dirty.
  Result<PageGuard> NewPage();

  /// Permanently pins `id` in the pool (fetching it if absent). A
  /// level-pinned page never leaves the buffer and all subsequent accesses
  /// are hits. Fails with ResourceExhausted when no frame can be freed.
  Status PinPermanently(PageId id);

  /// Releases a permanent pin.
  Status UnpinPermanently(PageId id);

  /// Number of permanently pinned pages.
  size_t num_permanent_pins() const { return num_permanent_pins_; }

  /// Writes all dirty pages back to the store (pages stay cached).
  Status FlushAll();

  /// Flushes and drops every unpinned page, returning the pool to a cold
  /// state (permanently pinned pages stay). Useful between experiment
  /// phases so warm-up from setup work does not leak into measurements.
  Status EvictAll();

  /// True if `id` currently resides in the pool (no access recorded).
  bool Contains(PageId id) const { return page_table_.count(id) > 0; }

  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_ = BufferStats{}; }

 private:
  friend class PageGuard;

  struct FrameMeta {
    PageId page_id = kInvalidPageId;
    uint32_t pin_count = 0;
    bool permanent = false;
    bool dirty = false;
    bool in_use = false;
  };

  // Finds a frame for a new page: a free frame if any, otherwise evicts.
  Result<FrameId> AcquireFrame();

  // Pins the page into a frame, reading it on a miss. Core of Fetch.
  Result<FrameId> PinPage(PageId id);

  void Unpin(PageId id, bool dirty);

  uint8_t* FrameData(FrameId f) {
    return buffer_.data() + static_cast<size_t>(f) * page_size();
  }

  PageStore* store_;
  size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<uint8_t> buffer_;
  std::vector<FrameMeta> frames_;
  std::vector<FrameId> free_frames_;
  std::unordered_map<PageId, FrameId> page_table_;
  size_t num_permanent_pins_ = 0;
  BufferStats stats_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_BUFFER_POOL_H_
