// BufferPool: a fixed number of in-memory page frames in front of a
// PageStore, with a pluggable replacement policy and support for pinning
// pages permanently (used to pin the top levels of an R-tree, Section 3.3 /
// 5.5 of the paper).
//
// Two implementations of the PageCache interface exist:
//
//   * BufferPool — single-threaded by design: the paper's workload is a
//     serial query stream, and keeping the pool lock-free makes the
//     disk-access counts exactly reproducible.
//   * ShardedBufferPool (sharded_buffer_pool.h) — a thread-safe pool built
//     from N lock-striped BufferPool shards, for concurrent workloads.
//
// Code that executes queries (RTree, the workload runners) depends only on
// PageCache, so serial experiments and concurrent serving share one code
// path.

#ifndef RTB_STORAGE_BUFFER_POOL_H_
#define RTB_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "storage/page.h"
#include "storage/page_store.h"
#include "storage/page_table.h"
#include "storage/replacement.h"
#include "util/result.h"
#include "util/status.h"

namespace rtb::storage {

class WalWriter;

/// Hit/miss counters for a page cache.
struct BufferStats {
  uint64_t requests = 0;    // Logical page requests.
  uint64_t hits = 0;        // Served from the pool.
  uint64_t misses = 0;      // Required a disk read.
  uint64_t evictions = 0;   // Pages pushed out.
  uint64_t writebacks = 0;  // Dirty pages written on eviction/flush.

  double HitRate() const {
    return requests == 0 ? 0.0
                         : static_cast<double>(hits) /
                               static_cast<double>(requests);
  }

  BufferStats& operator+=(const BufferStats& other) {
    requests += other.requests;
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    writebacks += other.writebacks;
    return *this;
  }
};

/// A page held in the pool. Returned by Fetch; the caller must Unpin it
/// (directly or via PageGuard) when done. `frame_id` is the pool-internal
/// frame index, carried so releasing the pin indexes the frame directly
/// instead of re-probing the page table.
struct Frame {
  PageId page_id = kInvalidPageId;
  uint8_t* data = nullptr;
  FrameId frame_id = 0;
};

class PageCache;

/// RAII unpinning wrapper around a fetched frame.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(PageCache* pool, Frame frame, bool mark_dirty)
      : pool_(pool), frame_(frame), dirty_(mark_dirty) {}

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept;

  ~PageGuard() { Release(); }

  /// Unpins now (idempotent).
  void Release();

  PageId page_id() const { return frame_.page_id; }
  const uint8_t* data() const { return frame_.data; }
  uint8_t* mutable_data() {
    dirty_ = true;
    return frame_.data;
  }
  bool valid() const { return pool_ != nullptr; }

 private:
  PageCache* pool_ = nullptr;
  Frame frame_;
  bool dirty_ = false;
};

/// Handle to an in-flight two-phase multi-get (PageCache::BeginFetchBatch).
/// Move-only; must be passed to FinishFetchBatch on the same cache to
/// collect the guards. Destroying an unfinished batch abandons it: the
/// cache waits out any in-flight read and releases every pin — so an error
/// path that drops the handle never leaks pins.
class PendingBatch {
 public:
  PendingBatch() = default;
  PendingBatch(const PendingBatch&) = delete;
  PendingBatch& operator=(const PendingBatch&) = delete;
  PendingBatch(PendingBatch&& other) noexcept { *this = std::move(other); }
  PendingBatch& operator=(PendingBatch&& other) noexcept;
  ~PendingBatch();

  /// True while the batch is begun and not yet finished or abandoned.
  bool valid() const { return pool_ != nullptr; }

 private:
  friend class PageCache;
  friend class BufferPool;

  PageCache* pool_ = nullptr;
  // Key into the owning pool's outstanding-read table; 0 marks the
  // synchronous fallback, whose guards sit in ready_ instead.
  uint64_t token_ = 0;
  std::vector<PageGuard> ready_;
};

/// Abstract page cache: the surface RTree and the workload runners execute
/// against. Implementations decide whether calls must be externally
/// serialized (BufferPool) or are internally synchronized
/// (ShardedBufferPool).
class PageCache {
 public:
  virtual ~PageCache() = default;

  /// Total number of frames.
  virtual size_t capacity() const = 0;
  virtual size_t page_size() const = 0;

  /// Fetches a page, reading from the store on a miss. The returned guard
  /// keeps the page pinned until released.
  virtual Result<PageGuard> Fetch(PageId id) = 0;

  /// Fetches for writing; the page is marked dirty.
  virtual Result<PageGuard> FetchMutable(PageId id) = 0;

  /// Multi-get: fetches `count` pages at once, returning one pinned guard
  /// per id in the same order (a duplicated id gets an independent pin).
  /// The base implementation loops Fetch; internally synchronized caches
  /// override it to amortize their locking over coalesced runs of ids.
  /// On error no pins are retained, but requests issued before the failing
  /// one are still counted in the stats. All `count` pages are pinned
  /// simultaneously, so callers batching against a small pool must keep
  /// `count` well under the unpinned-frame budget (the batch executor
  /// windows its fetches for exactly this reason).
  virtual Result<std::vector<PageGuard>> FetchBatch(const PageId* ids,
                                                    size_t count);

  /// Two-phase multi-get: stages the same pins (and counts the same
  /// BufferStats) as FetchBatch, but may return before the miss reads have
  /// completed; FinishFetchBatch waits and materializes the guards. The
  /// base implementation is fully synchronous — Begin performs the whole
  /// FetchBatch and Finish just hands the guards over — so every cache
  /// supports the protocol; BufferPool overrides it to submit the misses to
  /// the async read engine (storage/async_io.h) when the seam is on,
  /// letting callers overlap the read with their own work (the batch
  /// executor's double-buffered windows).
  ///
  /// Caller contract for overlapped batches: pages of concurrently
  /// outstanding batches must be disjoint, or the batches finished in begin
  /// order (the executor's windows satisfy both — windows of one level
  /// never share a page). Begin order is also finish order for stats.
  virtual Result<PendingBatch> BeginFetchBatch(const PageId* ids,
                                               size_t count);

  /// Completes a begun batch: blocks until its reads are done and returns
  /// one pinned guard per id in presentation order. On a read error all the
  /// batch's pins are released (like FetchBatch) and the error returns. The
  /// handle is consumed either way.
  virtual Result<std::vector<PageGuard>> FinishFetchBatch(
      PendingBatch&& batch);

  /// Allocates a fresh page in the store and returns it pinned and dirty.
  virtual Result<PageGuard> NewPage() = 0;

  /// Permanently pins `id` (fetching it if absent). A level-pinned page
  /// never leaves the buffer and all subsequent accesses are hits. Fails
  /// with ResourceExhausted when no frame can be freed.
  virtual Status PinPermanently(PageId id) = 0;

  /// Releases a permanent pin.
  virtual Status UnpinPermanently(PageId id) = 0;

  /// Number of permanently pinned pages.
  virtual size_t num_permanent_pins() const = 0;

  /// Writes all dirty pages back to the store (pages stay cached).
  virtual Status FlushAll() = 0;

  /// Final flush with the error surfaced: what the destructor does, minus
  /// the ability to report. Call before destroying a pool whose dirty data
  /// matters; the cache stays usable afterwards (Close is just a checked
  /// FlushAll for pools).
  virtual Status Close() { return FlushAll(); }

  /// Flushes and drops every unpinned page, returning the cache to a cold
  /// state (permanently pinned pages stay).
  virtual Status EvictAll() = 0;

  /// Attaches a write-ahead log (storage/wal.h), switching the cache to the
  /// no-force + WAL-before-writeback discipline: the first modification of
  /// a page since the last commit logs its before-image, commits log
  /// after-images instead of forcing pages out, and any writeback (eviction
  /// steal, FlushAll) first ensures the page's latest logged image is
  /// durable. `wal` is not owned and must outlive the cache. Default: the
  /// cache has no WAL and behaves exactly as before (the seam off).
  virtual void AttachWal(WalWriter* wal) { (void)wal; }

  /// The writer passed to AttachWal, or null when the cache runs without a
  /// WAL. Lets callers above the cache (e.g. the update executor) append
  /// logical records to the same log their WalCommit targets.
  virtual WalWriter* attached_wal() const { return nullptr; }

  /// Commit point for the attached WAL: logs an after-image for every page
  /// modified since the last commit and appends one commit record (made
  /// durable per the writer's group-commit window). Pages stay dirty in the
  /// pool — no data-file I/O here (no-force). A no-op without a WAL.
  virtual Status WalCommit() { return Status::OK(); }

  /// Checkpoint: flush every dirty page (WAL-first), fsync the store, then
  /// truncate the log to a fresh checkpoint record. After this, recovery
  /// has nothing to replay. A no-op without a WAL.
  virtual Status WalCheckpoint() { return Status::OK(); }

  /// Drops all dirty state without writing anything — the teardown of a
  /// simulated crash, where the dying process's buffered pages must NOT
  /// reach the store. Frames stay resident but clean; the cache is only
  /// good for destruction afterwards.
  virtual void DiscardAll() {}

  /// True if `id` currently resides in the cache (no access recorded).
  virtual bool Contains(PageId id) const = 0;

  /// Merged hit/miss counters across the whole cache (all shards).
  virtual BufferStats AggregateStats() const = 0;
  virtual void ResetStats() = 0;

 protected:
  /// Tears down a begun-but-unfinished batch (PendingBatch destructor):
  /// waits out any in-flight read and drops every pin the Begin staged.
  /// Never fails; a read error on an abandoned batch has no one to report
  /// to, so the pins simply unwind. Protected (not private like Unpin) so
  /// overrides can delegate the synchronous-fallback case back to this base
  /// implementation.
  virtual void AbandonFetchBatch(PendingBatch& batch);

 private:
  friend class PageGuard;
  friend class PendingBatch;

  /// Drops one pin on `frame`'s page, marking it dirty when `dirty`. Called
  /// by PageGuard on release, possibly from a different thread than Fetch
  /// for internally synchronized implementations.
  virtual void Unpin(const Frame& frame, bool dirty) = 0;
};

/// Buffer pool of `capacity` frames over `store`. Single-threaded: callers
/// must externally serialize access (or use ShardedBufferPool).
class BufferPool final : public PageCache {
 public:
  /// The pool does not own `store`; it must outlive the pool.
  BufferPool(PageStore* store, size_t capacity,
             std::unique_ptr<ReplacementPolicy> policy);

  /// Convenience: LRU pool, the paper's configuration.
  static std::unique_ptr<BufferPool> MakeLru(PageStore* store,
                                             size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool() override;

  size_t capacity() const override { return capacity_; }
  size_t page_size() const override { return store_->page_size(); }

  Result<PageGuard> Fetch(PageId id) override;
  Result<PageGuard> FetchMutable(PageId id) override;

  /// Overrides the loop-Fetch default to route the window's misses through
  /// one PageStore::ReadBatch call (page-id sorted, so consecutive pages
  /// coalesce into vectored reads on a FilePageStore). Hit/miss accounting
  /// happens per id in presentation order before any read is issued, so
  /// BufferStats are byte-identical to the looped path; only the number of
  /// read *syscalls* changes.
  Result<std::vector<PageGuard>> FetchBatch(const PageId* ids,
                                            size_t count) override;

  /// With the async seam on (AsyncIoActive()), Begin stages the pins and
  /// submits the misses to the AsyncReadEngine, returning while the read
  /// runs; Finish waits and materializes the guards. Stats are counted at
  /// Begin in presentation order, so BufferStats are byte-identical to
  /// FetchBatch. Seam off routes to the synchronous base implementation.
  /// Still single-threaded at the API: Begin/Finish/Abandon come from the
  /// pool's owning thread; only the read itself runs elsewhere.
  Result<PendingBatch> BeginFetchBatch(const PageId* ids,
                                       size_t count) override;
  Result<std::vector<PageGuard>> FinishFetchBatch(PendingBatch&& batch)
      override;

  Result<PageGuard> NewPage() override;

  Status PinPermanently(PageId id) override;
  Status UnpinPermanently(PageId id) override;
  size_t num_permanent_pins() const override { return num_permanent_pins_; }

  Status FlushAll() override;
  Status EvictAll() override;

  void AttachWal(WalWriter* wal) override { wal_ = wal; }
  WalWriter* attached_wal() const override { return wal_; }
  Status WalCommit() override;
  Status WalCheckpoint() override;
  void DiscardAll() override;

  /// Checked final flush. Outstanding BeginFetchBatch handles must be
  /// finished or abandoned first (DCHECKed). With a WAL attached this is a
  /// checkpoint (flush + store sync + log truncation) so the log does not
  /// outlive the pool with stale content.
  Status Close() override;

  bool Contains(PageId id) const override {
    return page_table_.Contains(id);
  }

  const BufferStats& stats() const { return stats_; }
  BufferStats AggregateStats() const override { return stats_; }
  void ResetStats() override { stats_ = BufferStats{}; }

 private:
  friend class PageGuard;
  friend class PendingBatch;
  friend class ShardedBufferPool;

  struct FrameMeta {
    PageId page_id = kInvalidPageId;
    // LSN of the frame's latest logged WAL image (before- or after-image);
    // writeback must EnsureDurable up to here first. kNoLsn when the page
    // was never logged (WAL off, or content unchanged since the store).
    Lsn lsn = kNoLsn;
    // Plain counter: every access is serialized — externally for a bare
    // BufferPool (single-threaded by contract), by the owning shard's mutex
    // for ShardedBufferPool (every entry point, including PageGuard
    // release, takes it) — so the mutex already provides the cross-thread
    // ordering an atomic would.
    uint32_t pin_count = 0;
    bool permanent = false;
    bool dirty = false;
    bool in_use = false;
    // Modified since the last WAL image of this frame was logged (commit,
    // steal or flush). Set at the first FetchMutable since then — which is
    // also when the before-image is captured — and at NewPage.
    bool wal_dirty = false;

    void Reset() {
      page_id = kInvalidPageId;
      lsn = kNoLsn;
      pin_count = 0;
      permanent = false;
      dirty = false;
      in_use = false;
      wal_dirty = false;
    }
  };

  // One id of an in-flight FetchBatch: the frame it pinned, and whether the
  // frame is still pending (installed in the table and pinned, but its data
  // not yet read from the store).
  struct BatchEntry {
    PageId id = kInvalidPageId;
    FrameId frame = 0;
    bool pending = false;
  };

  // One outstanding asynchronous BeginFetchBatch: its handle token, the
  // read job covering its pending entries (when any missed), and the staged
  // pins in presentation order.
  struct PendingRead {
    uint64_t token = 0;
    uint64_t job = 0;
    bool has_job = false;
    std::vector<BatchEntry> entries;
  };

  // Finds a frame for a new page: a free frame if any, otherwise evicts.
  Result<FrameId> AcquireFrame();

  // Writes the dirty eviction victim back. When the store coalesces batch
  // writes, the victim is opportunistically clustered with dirty unpinned
  // frames holding *consecutive* page ids (probed in both directions
  // through the page table), and the whole run goes out as one WriteBatch —
  // a single pwritev. The neighbors stay resident, just clean, so their own
  // later eviction needs no write. Without a coalescing store this is
  // exactly the historical single-page writeback. On failure every page of
  // the cluster stays dirty (page writes are idempotent; retry rewrites).
  Status WritebackVictim(FrameId victim);

  // Pins the page into a frame, reading it on a miss. Core of Fetch.
  Result<FrameId> PinPage(PageId id);

  // Like PinPage, but a miss installs the frame (pinned, in the page table)
  // without reading from the store; `*pending` is set and the caller must
  // either fill FrameData() — misses of a batch are filled together through
  // store ReadBatch — or roll the install back with UninstallPending.
  // A repeated id in the same batch hits the pending frame, exactly as it
  // would hit the already-read frame on the looped path.
  Result<FrameId> PinPageNoRead(PageId id, bool* pending);

  // Rolls back a pending install from PinPageNoRead: the frame (never
  // filled) leaves the page table, the policy forgets it, and it returns to
  // the free list. Any extra pins from repeated ids must be dropped first.
  void UninstallPending(FrameId f);

  // Reads every still-pending entry's page from the store, clearing the
  // pending flags on success. When the store coalesces
  // (CoalescesBatchReads()), the misses go through one ReadBatch call
  // (page-id sorted to maximize consecutive runs) and are copied into the
  // frames from a staging buffer; otherwise they are read straight into
  // the frames, page at a time in presentation order — the store would
  // loop anyway, and the sort and staging copy are pure overhead there. On
  // error the entries stay pending (the caller unwinds them).
  Status ReadPendingFrames(BatchEntry* entries, size_t n);

  // Installs the already-allocated, zero-filled page `id` into a frame,
  // pinned and dirty. Core of NewPage; also used by ShardedBufferPool,
  // which allocates centrally and routes the page to its shard.
  Result<FrameId> InstallNewPage(PageId id);

  void Unpin(const Frame& frame, bool dirty) override;
  void AbandonFetchBatch(PendingBatch& batch) override;

  // Stages the pins for ids[0..count) in presentation order (the exact
  // counting of FetchBatch's stage 1), unwinding everything on failure.
  // Shared front half of FetchBatch and the async BeginFetchBatch.
  Status StagePins(const PageId* ids, size_t count,
                   std::vector<BatchEntry>* entries);

  // Releases every staged pin of `entries` in reverse order; entries still
  // pending are uninstalled (their frames never held data unless
  // `data_valid`), the rest unpinned.
  void UnwindPins(const std::vector<BatchEntry>& entries, bool data_valid);

  // Detaches the outstanding PendingRead with `token` (RTB_CHECKs it
  // exists) and waits for its read job; returns the job's status and hands
  // the staged entries to the caller.
  Status CollectPendingRead(uint64_t token, std::vector<BatchEntry>* entries);

  // WAL pre-step of any writeback: logs a fresh after-image for every
  // wal-dirty frame of the set (clearing the flag — the image now reflects
  // the content being written) and blocks until the latest image of every
  // frame is durable. A no-op without an attached WAL. Used by
  // WritebackVictim and FlushAll before their store writes.
  Status WalBeforeWriteback(const FrameId* frames, size_t n);

  // Logs an after-image for every wal-dirty frame (clearing the flags)
  // without forcing durability — the front half of a commit. Shared with
  // ShardedBufferPool, whose WalCommit runs this per shard and then writes
  // one commit record for all of them.
  void WalLogDirtyImages();

  uint8_t* FrameData(FrameId f) {
    return buffer_.data() + static_cast<size_t>(f) * page_size();
  }

  PageStore* store_;
  // Not owned; null = WAL discipline off (the historical write path).
  WalWriter* wal_ = nullptr;
  size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::vector<uint8_t> buffer_;
  std::vector<FrameMeta> frames_;
  std::vector<FrameId> free_frames_;
  // Open-addressed page-id -> frame index, sized at construction so
  // steady-state fetches never allocate (see storage/page_table.h).
  PageTable page_table_;
  // Staging buffer for ReadPendingFrames when the store coalesces (frames
  // are not contiguous per batch; the vectored store reads land here and
  // are copied out). Grows once to the largest batch and is reused; stays
  // empty for stores that read page at a time.
  std::vector<uint8_t> batch_scratch_;
  // Reused per-call scratch for FetchBatch / ReadPendingFrames, so the
  // small, frequent fetch windows of low batch sizes don't pay a heap
  // allocation each. Safe as members: the pool is externally serialized
  // (per shard for ShardedBufferPool) and neither call re-enters.
  std::vector<BatchEntry> batch_entries_;
  std::vector<BatchEntry*> batch_pending_;
  std::vector<PageId> batch_ids_;
  // Scratch for the write side (FlushAll's sorted sweep and eviction-time
  // write clustering). Separate from the read-side batch_* scratch because
  // an eviction inside StagePins must not scribble over a fetch batch in
  // progress.
  std::vector<FrameId> wb_frames_;
  std::vector<PageId> wb_ids_;
  std::vector<uint8_t> wb_scratch_;
  // Asynchronous batches begun and not yet finished/abandoned. At most a
  // couple (the executor double-buffers), so a flat vector beats a map.
  std::vector<PendingRead> outstanding_;
  uint64_t next_pending_token_ = 1;
  size_t num_permanent_pins_ = 0;
  BufferStats stats_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_BUFFER_POOL_H_
