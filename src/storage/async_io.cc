#include "storage/async_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/macros.h"

#if defined(RTB_IO_URING_ENABLED) && __has_include(<linux/io_uring.h>)
#define RTB_HAS_IO_URING 1
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#include <unistd.h>
#endif

namespace rtb::storage {
namespace {

// Worker threads to start. More than a few is pointless: each job is one
// window of a double-buffered pipeline, so at most a handful are ever in
// flight, and the backing device (or page cache) is the real bottleneck.
constexpr unsigned kMaxWorkers = 4;

// Longest consecutive-id run one io_uring READV covers (same cap as the
// preadv path in file_page_store.cc, well under IOV_MAX).
constexpr size_t kMaxDirectRun = 64;

struct EnvConfig {
  bool on = false;
  bool uring = false;
};

EnvConfig InitialConfig() {
  EnvConfig cfg;
#if defined(RTB_ASYNC_IO_ENABLED)
  if (const char* env = std::getenv("RTB_ASYNC_IO")) {
    if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0 ||
        std::strcmp(env, "threadpool") == 0) {
      cfg.on = true;
    } else if (std::strcmp(env, "uring") == 0) {
      cfg.on = true;
      cfg.uring = true;
    }
  }
#endif
  return cfg;
}

std::atomic<bool>& AsyncSlot() {
  static std::atomic<bool> slot{InitialConfig().on};
  return slot;
}

std::atomic<bool>& UringPreferredSlot() {
  static std::atomic<bool> slot{InitialConfig().uring};
  return slot;
}

#if defined(RTB_HAS_IO_URING)

int SysUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

// Once any ring setup fails (old kernel, seccomp), stop trying process-wide
// and serve every job through the thread-pool path.
std::atomic<bool>& UringBrokenSlot() {
  static std::atomic<bool> slot{false};
  return slot;
}

// One io_uring per engine worker thread, mapped lazily on first direct-read
// job and torn down at thread exit. Single-threaded use by its owner, so no
// locking; the kernel-shared ring indices still need the release/acquire
// pairs the io_uring ABI specifies.
class UringRing {
 public:
  ~UringRing() {
    if (sqes_ != nullptr) {
      ::munmap(sqes_, sqes_len_);
    }
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) {
      ::munmap(cq_ptr_, cq_len_);
    }
    if (sq_ptr_ != nullptr) {
      ::munmap(sq_ptr_, sq_len_);
    }
    if (ring_fd_ >= 0) {
      ::close(ring_fd_);
    }
  }

  bool Init() {
    if (ring_fd_ >= 0) return true;
    if (UringBrokenSlot().load(std::memory_order_relaxed)) return false;
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysUringSetup(kEntries, &params);
    if (fd < 0) {
      UringBrokenSlot().store(true, std::memory_order_relaxed);
      return false;
    }
    sq_len_ = params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_len_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap =
        (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_len_ = cq_len_ = std::max(sq_len_, cq_len_);
    }
    sq_ptr_ = ::mmap(nullptr, sq_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      ::close(fd);
      UringBrokenSlot().store(true, std::memory_order_relaxed);
      return false;
    }
    cq_ptr_ = single_mmap
                  ? sq_ptr_
                  : ::mmap(nullptr, cq_len_, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
    if (cq_ptr_ == MAP_FAILED) {
      cq_ptr_ = nullptr;
      ::munmap(sq_ptr_, sq_len_);
      sq_ptr_ = nullptr;
      ::close(fd);
      UringBrokenSlot().store(true, std::memory_order_relaxed);
      return false;
    }
    sqes_len_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqes_len_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      if (cq_ptr_ != sq_ptr_) ::munmap(cq_ptr_, cq_len_);
      cq_ptr_ = nullptr;
      ::munmap(sq_ptr_, sq_len_);
      sq_ptr_ = nullptr;
      ::close(fd);
      UringBrokenSlot().store(true, std::memory_order_relaxed);
      return false;
    }
    auto* sq = static_cast<uint8_t*>(sq_ptr_);
    sq_head_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ptr_);
    cq_head_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    ring_fd_ = fd;
    return true;
  }

  // Submits `count` READV sqes from `subs` and blocks until all complete.
  // Fills results[i] with the cqe res for user_data i. Returns false on a
  // submission-machinery failure (ring now considered broken).
  struct Readv {
    int fd = -1;
    const struct iovec* iov = nullptr;
    uint32_t iov_cnt = 0;
    uint64_t offset = 0;
  };
  bool SubmitAndWait(const Readv* subs, size_t count,
                     std::vector<int32_t>* results) {
    results->assign(count, 0);
    size_t submitted = 0;
    size_t completed = 0;
    while (completed < count) {
      // Fill as much of the SQ ring as fits.
      uint32_t tail = __atomic_load_n(sq_tail_, __ATOMIC_RELAXED);
      const uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
      unsigned batch = 0;
      while (submitted < count && tail - head + batch < kEntries) {
        const uint32_t idx = (tail + batch) & *sq_mask_;
        io_uring_sqe* sqe = &sqes_[idx];
        std::memset(sqe, 0, sizeof(*sqe));
        sqe->opcode = IORING_OP_READV;
        sqe->fd = subs[submitted].fd;
        sqe->addr = reinterpret_cast<uint64_t>(subs[submitted].iov);
        sqe->len = subs[submitted].iov_cnt;
        sqe->off = subs[submitted].offset;
        sqe->user_data = submitted;
        sq_array_[idx] = idx;
        ++batch;
        ++submitted;
      }
      __atomic_store_n(sq_tail_, tail + batch, __ATOMIC_RELEASE);
      const int ret =
          SysUringEnter(ring_fd_, batch, /*min_complete=*/1,
                        IORING_ENTER_GETEVENTS);
      if (ret < 0) {
        if (errno == EINTR) continue;
        UringBrokenSlot().store(true, std::memory_order_relaxed);
        return false;
      }
      // Reap everything available.
      uint32_t chead = *cq_head_;
      const uint32_t ctail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      while (chead != ctail) {
        const io_uring_cqe& cqe = cqes_[chead & *cq_mask_];
        RTB_DCHECK(cqe.user_data < count);
        (*results)[cqe.user_data] = cqe.res;
        ++chead;
        ++completed;
      }
      __atomic_store_n(cq_head_, chead, __ATOMIC_RELEASE);
    }
    return true;
  }

 private:
  static constexpr unsigned kEntries = 64;

  int ring_fd_ = -1;
  void* sq_ptr_ = nullptr;
  size_t sq_len_ = 0;
  void* cq_ptr_ = nullptr;
  size_t cq_len_ = 0;
  io_uring_sqe* sqes_ = nullptr;
  size_t sqes_len_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_mask_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t* cq_mask_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
};

UringRing& ThreadRing() {
  thread_local UringRing ring;
  return ring;
}

// Plain positioned read used to finish a run the ring returned short (page
// cache races on file growth can legally truncate a readv).
bool PreadFullRaw(int fd, uint8_t* buf, size_t len, uint64_t offset) {
  size_t done = 0;
  while (done < len) {
    const ssize_t got =
        ::pread(fd, buf + done, len - done, static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (got == 0) return false;
    done += static_cast<size_t>(got);
  }
  return true;
}

bool UringRuntimeUsable() {
  return !UringBrokenSlot().load(std::memory_order_relaxed);
}

#else  // !RTB_HAS_IO_URING

bool UringRuntimeUsable() { return false; }

#endif  // RTB_HAS_IO_URING

}  // namespace

bool AsyncIoAvailable() {
#if defined(RTB_ASYNC_IO_ENABLED)
  return true;
#else
  return false;
#endif
}

bool AsyncIoActive() { return AsyncSlot().load(std::memory_order_relaxed); }

bool SetAsyncIo(bool on) {
  if (on && !AsyncIoAvailable()) return false;
  AsyncSlot().store(on, std::memory_order_relaxed);
  return true;
}

const char* AsyncIoBackendName() {
  if (!AsyncIoActive()) return "sync";
  if (UringPreferredSlot().load(std::memory_order_relaxed) &&
      UringRuntimeUsable()) {
    return "io_uring";
  }
  return "threadpool";
}

AsyncReadEngine& AsyncReadEngine::Instance() {
  static AsyncReadEngine engine;
  return engine;
}

AsyncReadEngine::AsyncReadEngine() = default;

AsyncReadEngine::~AsyncReadEngine() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

AsyncReadEngine::JobId AsyncReadEngine::Submit(PageStore* store,
                                               std::vector<Request> reqs) {
  RTB_CHECK(store != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  if (workers_.empty() && !stop_) {
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned n = std::clamp(hw, 1u, kMaxWorkers);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }
  const JobId id = next_id_++;
  ++stats_.jobs;
  stats_.pages += reqs.size();
  ++inflight_;
  stats_.max_inflight = std::max(stats_.max_inflight, inflight_);
  queue_.push_back(Job{id, store, std::move(reqs)});
  work_cv_.notify_one();
  return id;
}

Status AsyncReadEngine::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = done_.find(id);
  if (it == done_.end()) {
    ++stats_.waits_blocked;
    done_cv_.wait(lock, [this, id, &it] {
      it = done_.find(id);
      return it != done_.end();
    });
  } else {
    ++stats_.waits_ready;
  }
  Status result = std::move(it->second);
  done_.erase(it);
  return result;
}

AsyncIoStats AsyncReadEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AsyncReadEngine::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = AsyncIoStats{};
  // Keep the in-flight high-water meaningful across the reset boundary.
  stats_.max_inflight = inflight_;
}

void AsyncReadEngine::WorkerLoop() {
  // Worker-local scratch, reused across jobs (mirrors the buffer pools'
  // member scratch).
  std::vector<PageId> ids;
  std::vector<uint8_t> scratch;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    Job job = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    bool used_uring = false;
    Status status = Execute(job, &ids, &scratch, &used_uring);
    lock.lock();
    if (used_uring) ++stats_.uring_jobs;
    --inflight_;
    done_.emplace(job.id, std::move(status));
    done_cv_.notify_all();
  }
}

Status AsyncReadEngine::Execute(Job& job, std::vector<PageId>* ids,
                                std::vector<uint8_t>* scratch,
                                bool* used_uring) {
  *used_uring = false;
  // Sort by page id: consecutive pages become vectored runs, and a
  // descending elevator window still reaches the device ascending — exactly
  // what BufferPool::ReadPendingFrames does on the synchronous path.
  std::sort(job.reqs.begin(), job.reqs.end(),
            [](const Request& a, const Request& b) { return a.id < b.id; });
  const size_t n = job.reqs.size();
  const size_t stride = job.store->page_size();

#if defined(RTB_HAS_IO_URING)
  if (UringPreferredSlot().load(std::memory_order_relaxed) &&
      UringRuntimeUsable()) {
    const DirectReadSource src = job.store->direct_read_source();
    if (src.fd >= 0 && ThreadRing().Init()) {
      const PageId num_pages = job.store->num_pages();
      for (const Request& r : job.reqs) {
        if (r.id >= num_pages) {
          return Status::NotFound("read of unallocated page " +
                                  std::to_string(r.id));
        }
      }
      // Build one READV per consecutive-id run, scatter iovecs pointing
      // straight at the destination frames — no staging copy.
      struct Run {
        size_t begin = 0;
        size_t pages = 0;
      };
      std::vector<Run> runs;
      std::vector<struct iovec> iovs;
      iovs.reserve(n);
      std::vector<UringRing::Readv> subs;
      std::vector<size_t> iov_starts;
      size_t i = 0;
      while (i < n) {
        size_t run = 1;
        while (run < kMaxDirectRun && i + run < n &&
               job.reqs[i + run].id == job.reqs[i].id + run) {
          ++run;
        }
        iov_starts.push_back(iovs.size());
        for (size_t p = 0; p < run; ++p) {
          iovs.push_back({job.reqs[i + p].dst, stride});
        }
        UringRing::Readv sub;
        sub.fd = src.fd;
        sub.iov_cnt = static_cast<uint32_t>(run);
        sub.offset =
            src.base_offset + static_cast<uint64_t>(job.reqs[i].id) * stride;
        subs.push_back(sub);
        runs.push_back(Run{i, run});
        i += run;
      }
      // iovs is fully built (and stable) now; resolve the iovec pointers.
      for (size_t k = 0; k < subs.size(); ++k) {
        subs[k].iov = iovs.data() + iov_starts[k];
      }
      std::vector<int32_t> results;
      if (ThreadRing().SubmitAndWait(subs.data(), subs.size(), &results)) {
        *used_uring = true;
        for (size_t k = 0; k < subs.size(); ++k) {
          const size_t expected = runs[k].pages * stride;
          const int32_t res = results[k];
          size_t got = res > 0 ? static_cast<size_t>(res) : 0;
          if (res < 0 && res != -EINTR && res != -EAGAIN) {
            return Status::IoError("io_uring read failed (errno " +
                                   std::to_string(-res) + ")");
          }
          // Short (or retryable) result: finish the run with plain preads —
          // rare, and the run is already page-aligned so the loop is simple.
          while (got < expected) {
            const size_t page = got / stride;
            const size_t within = got % stride;
            const Request& r = job.reqs[runs[k].begin + page];
            if (!PreadFullRaw(src.fd, r.dst + within, stride - within,
                              src.base_offset +
                                  static_cast<uint64_t>(r.id) * stride +
                                  within)) {
              return Status::IoError("direct page read failed");
            }
            got = (page + 1) * stride;
          }
          job.store->RecordDirectRead(runs[k].pages);
        }
        return Status::OK();
      }
      // Ring broke mid-flight; fall through to the thread-pool path.
    }
  }
#endif  // RTB_HAS_IO_URING

  if (job.store->CoalescesBatchReads()) {
    // One vectored multi-get into worker scratch, scattered to the frames —
    // the same route (and the same IoStats) as ReadPendingFrames.
    ids->resize(n);
    for (size_t i = 0; i < n; ++i) (*ids)[i] = job.reqs[i].id;
    if (scratch->size() < n * stride) scratch->resize(n * stride);
    RTB_RETURN_IF_ERROR(job.store->ReadBatch(ids->data(), n, scratch->data()));
    for (size_t i = 0; i < n; ++i) {
      std::memcpy(job.reqs[i].dst, scratch->data() + i * stride, stride);
    }
    return Status::OK();
  }
  for (const Request& r : job.reqs) {
    RTB_RETURN_IF_ERROR(job.store->Read(r.id, r.dst));
  }
  return Status::OK();
}

}  // namespace rtb::storage
