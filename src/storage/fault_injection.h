// Fault-injecting PageStore wrapper for failure testing.
//
// Wraps any PageStore and fails selected operations with an injected
// status. Used by the test suite to verify that I/O errors propagate
// cleanly through the buffer pool and the R-tree (no crashes, no state
// corruption, no silent data loss) — and available to downstream users for
// the same purpose.

#ifndef RTB_STORAGE_FAULT_INJECTION_H_
#define RTB_STORAGE_FAULT_INJECTION_H_

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "storage/page_store.h"
#include "storage/wal.h"

namespace rtb::storage {

/// A syscall budget shared by everything a simulated process touches (its
/// page store via ArmCrash, its WAL via CrashWalHook): each store
/// read/write/allocation/sync and each WAL write/sync sync-point consumes
/// one tick, and the first operation past the budget "crashes" — it fails,
/// and every operation after it fails too (`dead`). Sweeping `budget` over
/// [0, N] in a test crashes the same deterministic workload at every
/// possible I/O point.
struct CrashClock {
  uint64_t budget = UINT64_MAX;  // Operations allowed before the crash.
  bool torn = false;             // The dying write persists a prefix.
  uint64_t torn_bytes = 0;       // How much of the dying write survives.
  bool dead = false;

  /// Consumes one tick. Returns true while the process lives; `*dying` is
  /// set (once) on the exact operation that crosses the budget, which is
  /// the only one eligible for a torn prefix.
  bool Tick(bool* dying = nullptr) {
    if (dead) return false;
    if (budget == 0) {
      dead = true;
      if (dying != nullptr) *dying = true;
      return false;
    }
    --budget;
    return true;
  }
};

/// WalFaultHook driving WalWriter from a CrashClock, so the log and the
/// store die at the same moment of the same simulated process.
class CrashWalHook final : public WalFaultHook {
 public:
  explicit CrashWalHook(CrashClock* clock) : clock_(clock) {
    RTB_CHECK(clock_ != nullptr);
  }

  size_t BeforeWrite(size_t len) override {
    bool dying = false;
    if (clock_->Tick(&dying)) return len;
    if (dying && clock_->torn) {
      return std::min<size_t>(clock_->torn_bytes, len);
    }
    return 0;
  }

  bool FailSync() override { return !clock_->Tick(); }

 private:
  CrashClock* clock_;
};

/// Pass-through PageStore that can fail reads/writes/allocations on
/// demand. Not thread-safe (like the rest of the storage layer).
class FaultInjectingPageStore final : public PageStore {
 public:
  /// Wraps `base` (not owned; must outlive this object).
  explicit FaultInjectingPageStore(PageStore* base) : base_(base) {
    RTB_CHECK(base_ != nullptr);
  }

  /// Fails the next `count` reads with `status`, then recovers.
  void FailNextReads(int count, Status status) {
    failing_reads_ = count;
    read_status_ = std::move(status);
  }

  /// Fails the next `count` writes.
  void FailNextWrites(int count, Status status) {
    failing_writes_ = count;
    write_status_ = std::move(status);
  }

  /// Fails the next `count` allocations (before the base store sees them).
  void FailNextAllocations(int count, Status status) {
    failing_allocations_ = count;
    alloc_status_ = std::move(status);
  }

  /// Fails every read of page `id` until cleared with kInvalidPageId.
  void FailPage(PageId id, Status status) {
    poisoned_page_ = id;
    poisoned_status_ = std::move(status);
  }

  /// Fails every write of page `id` (scalar or inside a batch) until
  /// cleared with kInvalidPageId. The write-side twin of FailPage: lets a
  /// test target one dirty page's writeback while the rest of a flush
  /// succeeds.
  void FailPageWrites(PageId id, Status status) {
    write_poisoned_page_ = id;
    write_poisoned_status_ = std::move(status);
  }

  /// Arms crash simulation: every read/write/allocation/sync ticks
  /// `clock`, and the operation that exhausts its budget fails — tearing a
  /// prefix of the dying page write into the base store when `clock->torn`
  /// is set — after which every operation fails. Batches degrade to
  /// page-at-a-time while armed, so the budget counts (and the crash can
  /// land between) individual pages. Pass nullptr to disarm. `clock` is
  /// not owned and is shared with the CrashWalHook of the same simulated
  /// process.
  void ArmCrash(CrashClock* clock) { crash_ = clock; }

  size_t page_size() const override { return base_->page_size(); }
  PageId num_pages() const override { return base_->num_pages(); }
  bool CoalescesBatchReads() const override {
    return base_->CoalescesBatchReads();
  }
  bool CoalescesBatchWrites() const override {
    return base_->CoalescesBatchWrites();
  }

  Result<PageId> Allocate() override {
    if (crash_ != nullptr && !crash_->Tick()) {
      return Status::IoError("simulated crash at allocation");
    }
    if (failing_allocations_ > 0) {
      --failing_allocations_;
      return alloc_status_;
    }
    return base_->Allocate();
  }

  Status Read(PageId id, uint8_t* out) override {
    if (crash_ != nullptr && !crash_->Tick()) {
      return Status::IoError("simulated crash at page read");
    }
    if (poisoned_page_ == id) return poisoned_status_;
    if (failing_reads_ > 0) {
      --failing_reads_;
      return read_status_;
    }
    return base_->Read(id, out);
  }

  Status ReadBatch(const PageId* ids, size_t n, uint8_t* out) override {
    // Only a batch that would actually fault degrades to page-at-a-time: a
    // read countdown hits whatever comes next, but a poisoned page only
    // matters if this batch contains it. Healthy batches keep the base
    // store's vectored behavior (and its read_batches accounting), so fault
    // tests measure the same batch I/O production takes.
    bool would_fault = failing_reads_ > 0 || crash_ != nullptr;
    if (!would_fault && poisoned_page_ != kInvalidPageId) {
      for (size_t i = 0; i < n; ++i) {
        if (ids[i] == poisoned_page_) {
          would_fault = true;
          break;
        }
      }
    }
    if (!would_fault) {
      return base_->ReadBatch(ids, n, out);
    }
    // Degrade through this wrapper's Read, so an injected failure lands
    // mid-batch at exactly the page it would hit on the serial path (a
    // countdown of k fails the batch's page k).
    for (size_t i = 0; i < n; ++i) {
      RTB_RETURN_IF_ERROR(Read(ids[i], out + i * page_size()));
    }
    return Status::OK();
  }

  Status Write(PageId id, const uint8_t* data) override {
    if (crash_ != nullptr) {
      bool dying = false;
      if (!crash_->Tick(&dying)) {
        if (dying && crash_->torn && crash_->torn_bytes > 0) {
          // Torn page write: a prefix of the new bytes lands over the old
          // content — exactly what a power cut mid-write leaves behind.
          const size_t prefix =
              std::min<size_t>(crash_->torn_bytes, page_size());
          torn_scratch_.resize(page_size());
          if (base_->Read(id, torn_scratch_.data()).ok()) {
            std::memcpy(torn_scratch_.data(), data, prefix);
            (void)base_->Write(id, torn_scratch_.data());
          }
        }
        return Status::IoError("simulated crash at page write");
      }
    }
    if (write_poisoned_page_ == id) return write_poisoned_status_;
    if (failing_writes_ > 0) {
      --failing_writes_;
      return write_status_;
    }
    return base_->Write(id, data);
  }

  Status WriteBatch(const PageId* ids, size_t n,
                    const uint8_t* data) override {
    // Same degradation rule as ReadBatch: only a batch that would actually
    // fault falls back to page-at-a-time, so healthy batches keep the base
    // store's pwritev coalescing (and its write_batches accounting), and an
    // armed countdown lands at exactly the page it would hit serially.
    bool would_fault = failing_writes_ > 0 || crash_ != nullptr;
    if (!would_fault && write_poisoned_page_ != kInvalidPageId) {
      for (size_t i = 0; i < n; ++i) {
        if (ids[i] == write_poisoned_page_) {
          would_fault = true;
          break;
        }
      }
    }
    if (!would_fault) {
      return base_->WriteBatch(ids, n, data);
    }
    for (size_t i = 0; i < n; ++i) {
      RTB_RETURN_IF_ERROR(Write(ids[i], data + i * page_size()));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (crash_ != nullptr && !crash_->Tick()) {
      return Status::IoError("simulated crash at store sync");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

  // direct_read_source() deliberately keeps the base class's "none": a
  // direct descriptor would let the async engine's io_uring backend read
  // around the wrapper, so armed read faults would never fire.

  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  PageStore* base_;
  int failing_reads_ = 0;
  int failing_writes_ = 0;
  int failing_allocations_ = 0;
  Status read_status_ = Status::IoError("injected read fault");
  Status write_status_ = Status::IoError("injected write fault");
  Status alloc_status_ = Status::IoError("injected allocation fault");
  PageId poisoned_page_ = kInvalidPageId;
  Status poisoned_status_ = Status::IoError("poisoned page");
  PageId write_poisoned_page_ = kInvalidPageId;
  Status write_poisoned_status_ = Status::IoError("poisoned page write");
  CrashClock* crash_ = nullptr;  // Not owned; null = crash sim disarmed.
  std::vector<uint8_t> torn_scratch_;
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_FAULT_INJECTION_H_
