// Fault-injecting PageStore wrapper for failure testing.
//
// Wraps any PageStore and fails selected operations with an injected
// status. Used by the test suite to verify that I/O errors propagate
// cleanly through the buffer pool and the R-tree (no crashes, no state
// corruption, no silent data loss) — and available to downstream users for
// the same purpose.

#ifndef RTB_STORAGE_FAULT_INJECTION_H_
#define RTB_STORAGE_FAULT_INJECTION_H_

#include <cstdint>

#include "storage/page_store.h"

namespace rtb::storage {

/// Pass-through PageStore that can fail reads/writes/allocations on
/// demand. Not thread-safe (like the rest of the storage layer).
class FaultInjectingPageStore final : public PageStore {
 public:
  /// Wraps `base` (not owned; must outlive this object).
  explicit FaultInjectingPageStore(PageStore* base) : base_(base) {
    RTB_CHECK(base_ != nullptr);
  }

  /// Fails the next `count` reads with `status`, then recovers.
  void FailNextReads(int count, Status status) {
    failing_reads_ = count;
    read_status_ = std::move(status);
  }

  /// Fails the next `count` writes.
  void FailNextWrites(int count, Status status) {
    failing_writes_ = count;
    write_status_ = std::move(status);
  }

  /// Fails the next `count` allocations (before the base store sees them).
  void FailNextAllocations(int count, Status status) {
    failing_allocations_ = count;
    alloc_status_ = std::move(status);
  }

  /// Fails every read of page `id` until cleared with kInvalidPageId.
  void FailPage(PageId id, Status status) {
    poisoned_page_ = id;
    poisoned_status_ = std::move(status);
  }

  /// Fails every write of page `id` (scalar or inside a batch) until
  /// cleared with kInvalidPageId. The write-side twin of FailPage: lets a
  /// test target one dirty page's writeback while the rest of a flush
  /// succeeds.
  void FailPageWrites(PageId id, Status status) {
    write_poisoned_page_ = id;
    write_poisoned_status_ = std::move(status);
  }

  size_t page_size() const override { return base_->page_size(); }
  PageId num_pages() const override { return base_->num_pages(); }
  bool CoalescesBatchReads() const override {
    return base_->CoalescesBatchReads();
  }
  bool CoalescesBatchWrites() const override {
    return base_->CoalescesBatchWrites();
  }

  Result<PageId> Allocate() override {
    if (failing_allocations_ > 0) {
      --failing_allocations_;
      return alloc_status_;
    }
    return base_->Allocate();
  }

  Status Read(PageId id, uint8_t* out) override {
    if (poisoned_page_ == id) return poisoned_status_;
    if (failing_reads_ > 0) {
      --failing_reads_;
      return read_status_;
    }
    return base_->Read(id, out);
  }

  Status ReadBatch(const PageId* ids, size_t n, uint8_t* out) override {
    // Only a batch that would actually fault degrades to page-at-a-time: a
    // read countdown hits whatever comes next, but a poisoned page only
    // matters if this batch contains it. Healthy batches keep the base
    // store's vectored behavior (and its read_batches accounting), so fault
    // tests measure the same batch I/O production takes.
    bool would_fault = failing_reads_ > 0;
    if (!would_fault && poisoned_page_ != kInvalidPageId) {
      for (size_t i = 0; i < n; ++i) {
        if (ids[i] == poisoned_page_) {
          would_fault = true;
          break;
        }
      }
    }
    if (!would_fault) {
      return base_->ReadBatch(ids, n, out);
    }
    // Degrade through this wrapper's Read, so an injected failure lands
    // mid-batch at exactly the page it would hit on the serial path (a
    // countdown of k fails the batch's page k).
    for (size_t i = 0; i < n; ++i) {
      RTB_RETURN_IF_ERROR(Read(ids[i], out + i * page_size()));
    }
    return Status::OK();
  }

  Status Write(PageId id, const uint8_t* data) override {
    if (write_poisoned_page_ == id) return write_poisoned_status_;
    if (failing_writes_ > 0) {
      --failing_writes_;
      return write_status_;
    }
    return base_->Write(id, data);
  }

  Status WriteBatch(const PageId* ids, size_t n,
                    const uint8_t* data) override {
    // Same degradation rule as ReadBatch: only a batch that would actually
    // fault falls back to page-at-a-time, so healthy batches keep the base
    // store's pwritev coalescing (and its write_batches accounting), and an
    // armed countdown lands at exactly the page it would hit serially.
    bool would_fault = failing_writes_ > 0;
    if (!would_fault && write_poisoned_page_ != kInvalidPageId) {
      for (size_t i = 0; i < n; ++i) {
        if (ids[i] == write_poisoned_page_) {
          would_fault = true;
          break;
        }
      }
    }
    if (!would_fault) {
      return base_->WriteBatch(ids, n, data);
    }
    for (size_t i = 0; i < n; ++i) {
      RTB_RETURN_IF_ERROR(Write(ids[i], data + i * page_size()));
    }
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

  // direct_read_source() deliberately keeps the base class's "none": a
  // direct descriptor would let the async engine's io_uring backend read
  // around the wrapper, so armed read faults would never fire.

  IoStats stats() const override { return base_->stats(); }
  void ResetStats() override { base_->ResetStats(); }

 private:
  PageStore* base_;
  int failing_reads_ = 0;
  int failing_writes_ = 0;
  int failing_allocations_ = 0;
  Status read_status_ = Status::IoError("injected read fault");
  Status write_status_ = Status::IoError("injected write fault");
  Status alloc_status_ = Status::IoError("injected allocation fault");
  PageId poisoned_page_ = kInvalidPageId;
  Status poisoned_status_ = Status::IoError("poisoned page");
  PageId write_poisoned_page_ = kInvalidPageId;
  Status write_poisoned_status_ = Status::IoError("poisoned page write");
};

}  // namespace rtb::storage

#endif  // RTB_STORAGE_FAULT_INJECTION_H_
