#include "rtree/shared_batch.h"

#include <algorithm>
#include <thread>

#include "util/macros.h"

namespace rtb::rtree {

namespace {

// Same per-window pin bound as BatchExecutor, but here every worker holds a
// window at once, so StartRound divides the pool budget by the worker count.
constexpr size_t kMaxFetchWindow = 8;

// Pool exhaustion while other workers hold their window pins is transient:
// every pin taken inside ProcessWindow is released inside ProcessWindow, so
// a worker that backs off (holding zero pins) always finds a frame once a
// peer finishes its window. The cap only exists to turn a genuinely
// undersized pool (or a leak) into an error instead of a livelock.
constexpr int kMaxExhaustedRetries = 1 << 16;

}  // namespace

SharedBatchExecutor::SharedBatchExecutor(const RTree* tree, uint32_t workers)
    : tree_(tree),
      workers_(workers),
      states_(workers),
      barrier_(static_cast<std::ptrdiff_t>(workers), RoundSync{this}) {
  RTB_CHECK(tree_ != nullptr);
  RTB_CHECK(workers_ >= 1);
  const size_t fanout = NodeCapacity(tree_->pool()->page_size());
  for (WorkerState& st : states_) {
    st.match_idx.resize(fanout);
  }
}

void SharedBatchExecutor::OnBarrier() noexcept {
  if (phase_ == Phase::kStart) {
    StartRound();
  } else {
    BuildLevel();
  }
}

void SharedBatchExecutor::StartRound() noexcept {
  // Lay the workers' query slices end to end; st.offset maps a worker's
  // local query index to its global id in all_queries_.
  uint32_t off = 0;
  all_queries_.clear();
  for (WorkerState& st : states_) {
    st.offset = off;
    off += static_cast<uint32_t>(st.queries.size());
    all_queries_.insert(all_queries_.end(), st.queries.begin(),
                        st.queries.end());
    st.emit.clear();
    st.matches.clear();
  }
  round_reverse_ = sweep_reverse_;
  sweep_reverse_ = !sweep_reverse_;
  failed_.store(false, std::memory_order_relaxed);
  first_error_ = Status::OK();
  round_nodes_ = 0;
  round_pages_ = 0;
  round_done_ = false;
  window_ = std::min(kMaxFetchWindow,
                     std::max<size_t>(1, tree_->pool()->capacity() /
                                             (4 * workers_)));
  phase_ = Phase::kLevel;
}

void SharedBatchExecutor::BuildLevel() noexcept {
  // Merge what every worker emitted for the next level into the one shared
  // frontier. Sorting by packed (page, query) both groups duplicate pages
  // into runs and keeps the sweep page-ordered across workers.
  frontier_.clear();
  for (WorkerState& st : states_) {
    frontier_.insert(frontier_.end(), st.emit.begin(), st.emit.end());
    st.emit.clear();
  }
  if (failed_.load(std::memory_order_relaxed) || frontier_.empty()) {
    round_done_ = true;
    phase_ = Phase::kStart;
    return;
  }
  std::sort(frontier_.begin(), frontier_.end());

  runs_.clear();
  for (uint32_t i = 0; i < frontier_.size(); ++i) {
    const storage::PageId page = ItemPage(frontier_[i]);
    if (runs_.empty() || page != runs_.back().page) {
      runs_.push_back({page, i, i});
    }
    runs_.back().end = i + 1;
  }
  if (round_reverse_) std::reverse(runs_.begin(), runs_.end());
  round_nodes_ += frontier_.size();
  round_pages_ += runs_.size();
  cursor_.store(0, std::memory_order_relaxed);
}

Status SharedBatchExecutor::VisitRun(uint32_t worker,
                                     const storage::PageGuard& guard,
                                     size_t begin, size_t end) {
  WorkerState& st = states_[worker];
  RTB_ASSIGN_OR_RETURN(
      NodeView view,
      NodeView::Create(guard.data(), tree_->pool()->page_size()));
  st.scratch.Load(view);
  const bool leaf = st.scratch.is_leaf();
  for (size_t k = begin; k < end; ++k) {
    const uint32_t gq = ItemQuery(frontier_[k]);
    const size_t nmatch =
        ScanIntersecting(st.scratch, all_queries_[gq], st.match_idx.data());
    if (leaf) {
      for (size_t m = 0; m < nmatch; ++m) {
        st.matches.emplace_back(gq, st.scratch.id(st.match_idx[m]));
      }
    } else {
      for (size_t m = 0; m < nmatch; ++m) {
        st.emit.push_back(PackItem(
            static_cast<storage::PageId>(st.scratch.id(st.match_idx[m])),
            gq));
      }
    }
  }
  return Status::OK();
}

Status SharedBatchExecutor::ProcessWindow(uint32_t worker, size_t p,
                                          size_t w) {
  WorkerState& st = states_[worker];
  storage::PageCache* pool = tree_->pool();
  bool done = false;
  if (w > 1) {
    st.window_ids.clear();
    for (size_t j = 0; j < w; ++j) {
      st.window_ids.push_back(runs_[p + j].page);
    }
    Result<std::vector<storage::PageGuard>> guards =
        pool->FetchBatch(st.window_ids.data(), w);
    if (guards.ok()) {
      for (size_t j = 0; j < w; ++j) {
        RTB_RETURN_IF_ERROR(
            VisitRun(worker, (*guards)[j], runs_[p + j].begin,
                     runs_[p + j].end));
        (*guards)[j].Release();
      }
      done = true;
    }
    // Multi-get refused (e.g. the other workers' pinned windows left too few
    // free frames) — degrade to one page at a time, same as BatchExecutor.
  }
  if (!done) {
    for (size_t j = 0; j < w; ++j) {
      Result<storage::PageGuard> guard = pool->Fetch(runs_[p + j].page);
      for (int tries = 0;
           !guard.ok() && guard.status().code() ==
                              StatusCode::kResourceExhausted &&
           tries < kMaxExhaustedRetries;
           ++tries) {
        std::this_thread::yield();
        guard = pool->Fetch(runs_[p + j].page);
      }
      RTB_RETURN_IF_ERROR(guard.status());
      RTB_RETURN_IF_ERROR(
          VisitRun(worker, *guard, runs_[p + j].begin, runs_[p + j].end));
    }
  }
  return Status::OK();
}

void SharedBatchExecutor::RecordError(Status s) {
  {
    std::lock_guard<std::mutex> lock(err_mu_);
    if (first_error_.ok()) first_error_ = std::move(s);
  }
  failed_.store(true, std::memory_order_relaxed);
}

Status SharedBatchExecutor::Run(uint32_t worker,
                                std::span<const geom::Rect> queries,
                                std::vector<std::vector<ObjectId>>* results,
                                BatchStats* stats) {
  RTB_CHECK(worker < workers_);
  RTB_CHECK(results != nullptr);
  results->resize(queries.size());
  for (std::vector<ObjectId>& r : *results) {
    r.clear();
  }

  WorkerState& st = states_[worker];
  st.queries = queries;
  // kStart completion: offsets, flattened query list, cleared scratch.
  barrier_.arrive_and_wait();

  // Seed the root items for this worker's queries; empty rects match
  // nothing and never touch the tree, as in the serial path.
  for (uint32_t q = 0; q < queries.size(); ++q) {
    if (!queries[q].is_empty()) {
      st.emit.push_back(PackItem(tree_->root(), st.offset + q));
    }
  }

  for (;;) {
    // kLevel completion: merge emits into the sorted shared frontier.
    barrier_.arrive_and_wait();
    if (round_done_) break;
    for (;;) {
      const size_t p = cursor_.fetch_add(window_, std::memory_order_relaxed);
      if (p >= runs_.size() || failed_.load(std::memory_order_relaxed)) {
        break;
      }
      const size_t w = std::min(window_, runs_.size() - p);
      Status s = ProcessWindow(worker, p, w);
      if (!s.ok()) {
        RecordError(std::move(s));
        break;
      }
    }
  }

  if (failed_.load(std::memory_order_relaxed)) {
    // Collective abort: every worker is past the round_done_ barrier, so
    // first_error_ is stable; all return the same status.
    std::lock_guard<std::mutex> lock(err_mu_);
    return first_error_;
  }

  // Harvest: matches live with whichever worker scanned the page; pull the
  // ones belonging to this worker's global id range. Safe unsynchronized —
  // no worker touches `matches` again until the next round's kStart
  // completion, which cannot run until every harvester re-enters Run.
  const uint32_t lo = st.offset;
  const uint32_t hi = st.offset + static_cast<uint32_t>(queries.size());
  for (const WorkerState& other : states_) {
    for (const auto& [gq, oid] : other.matches) {
      if (gq >= lo && gq < hi) {
        (*results)[gq - lo].push_back(oid);
      }
    }
  }

  // Counters are global to the round; attribute them once, via worker 0, so
  // a sum over per-worker stats is the true total.
  if (worker == 0 && stats != nullptr) {
    stats->node_accesses += round_nodes_;
    stats->page_visits += round_pages_;
  }
  return Status::OK();
}

}  // namespace rtb::rtree
