// R-tree configuration.

#ifndef RTB_RTREE_CONFIG_H_
#define RTB_RTREE_CONFIG_H_

#include <cstdint>

namespace rtb::rtree {

/// Split policy used by tuple-at-a-time insertion. The paper's TAT loader
/// uses Guttman's quadratic heuristic; linear and the R*-tree split
/// (Beckmann et al., paper ref [1]) are provided for update-policy studies
/// — the buffer model is explicitly meant to compare them (Section 1).
enum class SplitPolicy { kQuadratic, kLinear, kRStar };

/// Insertion policy: Guttman's original descent, or the R*-tree treatment
/// (overlap-minimizing subtree choice for leaf parents + forced
/// reinsertion on first overflow per level).
enum class InsertPolicy { kGuttman, kRStar };

/// Static parameters of an R-tree.
struct RTreeConfig {
  /// Maximum entries per node ("n" in the paper). The paper's experiments
  /// use 100 (Figs. 6-9) and 25 (Table 2, Figs. 10-11).
  uint32_t max_entries = 100;

  /// Minimum entries per node after a split ("m"). Guttman requires
  /// m <= n/2; 40% is the customary choice.
  uint32_t min_entries = 40;

  SplitPolicy split_policy = SplitPolicy::kQuadratic;
  InsertPolicy insert_policy = InsertPolicy::kGuttman;

  /// Fraction of a node's entries removed and reinserted by the R*
  /// overflow treatment (Beckmann et al. recommend 30%).
  double reinsert_fraction = 0.3;

  /// Returns a config with min_entries = 40% of n (at least 1).
  static RTreeConfig WithFanout(uint32_t n,
                                SplitPolicy split = SplitPolicy::kQuadratic) {
    RTreeConfig c;
    c.max_entries = n;
    c.min_entries = n * 2 / 5 > 0 ? n * 2 / 5 : 1;
    c.split_policy = split;
    return c;
  }

  /// The full R*-tree configuration (R* split + R* insertion).
  static RTreeConfig RStar(uint32_t n) {
    RTreeConfig c = WithFanout(n, SplitPolicy::kRStar);
    c.insert_policy = InsertPolicy::kRStar;
    return c;
  }

  bool IsValid() const {
    return max_entries >= 2 && min_entries >= 1 &&
           min_entries <= max_entries / 2 && reinsert_fraction >= 0.0 &&
           reinsert_fraction < 1.0;
  }
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_CONFIG_H_
