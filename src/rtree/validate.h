// Structural validation of R-trees.
//
// Checks the invariants every correct R-tree must satisfy; the property
// tests run this after random insert/delete workloads and after every bulk
// load.

#ifndef RTB_RTREE_VALIDATE_H_
#define RTB_RTREE_VALIDATE_H_

#include <string>
#include <vector>

#include "rtree/config.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::rtree {

/// Options controlling which invariants are enforced.
struct ValidateOptions {
  /// Enforce the Guttman minimum fill on non-root nodes. Packed trees
  /// legitimately leave one underfull node per level (the last group), so
  /// bulk-load validation disables this.
  bool check_min_fill = true;

  /// Require parent entry rectangles to equal the child MBR exactly (they
  /// are computed identically, so exact equality is expected); when false
  /// only containment is required.
  bool require_tight_parents = true;
};

/// Result of a validation pass.
struct ValidationReport {
  bool ok = true;
  uint64_t num_nodes = 0;
  uint64_t num_data_entries = 0;
  std::vector<std::string> issues;
};

/// Walks the tree rooted at `root` and checks:
///  - every node decodes and has level = parent level - 1 (leaves at 0);
///  - entry counts are within [min_entries, max_entries] per options
///    (the root may hold as few as 1 entry, or 0 for an empty tree);
///  - each parent entry rectangle bounds (or exactly equals) the child MBR;
///  - no page is reachable twice (no aliasing).
ValidationReport ValidateTree(storage::PageStore* store,
                              storage::PageId root,
                              const RTreeConfig& config,
                              const ValidateOptions& options = {});

}  // namespace rtb::rtree

#endif  // RTB_RTREE_VALIDATE_H_
