#include "rtree/validate.h"

#include <string>
#include <unordered_set>
#include <vector>

#include "geom/rect.h"
#include "rtree/node.h"

namespace rtb::rtree {
namespace {

struct Validator {
  storage::PageStore* store;
  const RTreeConfig* config;
  const ValidateOptions* options;
  ValidationReport* report;
  std::unordered_set<storage::PageId> seen;
  std::vector<uint8_t> scratch;

  void Fail(std::string message) {
    report->ok = false;
    report->issues.push_back(std::move(message));
  }

  // Returns the node's actual MBR, or Empty on unrecoverable error.
  geom::Rect Check(storage::PageId page, int expected_level, bool is_root) {
    if (!seen.insert(page).second) {
      Fail("page " + std::to_string(page) + " reachable twice");
      return geom::Rect::Empty();
    }
    Status read = store->Read(page, scratch.data());
    if (!read.ok()) {
      Fail("page " + std::to_string(page) + ": " + read.ToString());
      return geom::Rect::Empty();
    }
    Result<NodeView> node = NodeView::Create(scratch.data(),
                                             store->page_size());
    if (!node.ok()) {
      Fail("page " + std::to_string(page) + ": " + node.status().ToString());
      return geom::Rect::Empty();
    }
    ++report->num_nodes;

    if (expected_level >= 0 && node->level() != expected_level) {
      Fail("page " + std::to_string(page) + ": level " +
           std::to_string(node->level()) + ", expected " +
           std::to_string(expected_level));
    }
    size_t count = node->count();
    if (count > config->max_entries) {
      Fail("page " + std::to_string(page) + ": " + std::to_string(count) +
           " entries exceeds max " + std::to_string(config->max_entries));
    }
    if (is_root) {
      if (!node->is_leaf() && count < 2) {
        Fail("internal root with fewer than 2 entries");
      }
    } else if (options->check_min_fill && count < config->min_entries) {
      Fail("page " + std::to_string(page) + ": " + std::to_string(count) +
           " entries below min " + std::to_string(config->min_entries));
    } else if (count == 0) {
      Fail("non-root page " + std::to_string(page) + " is empty");
    }

    if (node->is_leaf()) {
      report->num_data_entries += count;
      return node->Mbr();
    }

    // Validate children; scratch is reused inside recursion, so copy the
    // entries first.
    std::vector<Entry> entries;
    entries.reserve(count);
    for (size_t i = 0; i < count; ++i) entries.push_back(node->entry(i));
    const int child_level = node->level() - 1;
    geom::Rect mbr = geom::Rect::Empty();
    for (const Entry& e : entries) {
      mbr = geom::Union(mbr, e.rect);
      geom::Rect child_mbr = Check(static_cast<storage::PageId>(e.id),
                                   child_level, /*is_root=*/false);
      if (child_mbr.is_empty()) continue;  // Error already reported.
      if (options->require_tight_parents) {
        if (!(e.rect == child_mbr)) {
          Fail("page " + std::to_string(page) + ": entry for child " +
               std::to_string(e.id) + " is not the child's exact MBR");
        }
      } else if (!e.rect.Contains(child_mbr)) {
        Fail("page " + std::to_string(page) + ": entry for child " +
             std::to_string(e.id) + " does not contain the child's MBR");
      }
    }
    return mbr;
  }
};

}  // namespace

ValidationReport ValidateTree(storage::PageStore* store,
                              storage::PageId root,
                              const RTreeConfig& config,
                              const ValidateOptions& options) {
  ValidationReport report;
  Validator validator{store, &config, &options, &report, {}, {}};
  validator.scratch.resize(store->page_size());
  validator.Check(root, /*expected_level=*/-1, /*is_root=*/true);
  return report;
}

}  // namespace rtb::rtree
