#include "rtree/update_batch.h"

#include <algorithm>
#include <utility>

#include "rtree/split.h"
#include "storage/wal.h"
#include "util/macros.h"

namespace rtb::rtree {

using geom::Rect;
using storage::PageGuard;
using storage::PageId;

namespace {

// Same bound and rationale as BatchExecutor's fetch window: keep the
// multi-get small so the pinned window never starves a small pool.
constexpr size_t kMaxFetchWindow = 8;

}  // namespace

UpdateBatchExecutor::UpdateBatchExecutor(RTree* tree) : tree_(tree) {
  RTB_CHECK(tree_ != nullptr);
}

Status UpdateBatchExecutor::Run(std::span<const UpdateOp> ops,
                                UpdateBatchStats* stats,
                                std::vector<uint8_t>* delete_found) {
  if (delete_found != nullptr) delete_found->assign(ops.size(), 0);
  if (ops.empty()) return Status::OK();
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateOp::Kind::kInsert && op.rect.is_empty()) {
      return Status::InvalidArgument("cannot insert an empty rectangle");
    }
  }
  UpdateBatchStats local;
  if (ops.size() == 1) {
    // A batch of one is the serial algorithm, byte for byte: same descent,
    // same R* overflow treatment, same write pattern. The batched passes
    // below are logically equivalent but structurally different, so the
    // boundary case delegates instead of imitating.
    const UpdateOp& op = ops.front();
    if (op.kind == UpdateOp::Kind::kInsert) {
      RTB_RETURN_IF_ERROR(tree_->Insert(op.rect, op.id));
      ++local.inserts;
    } else {
      RTB_ASSIGN_OR_RETURN(bool found, tree_->Delete(op.rect, op.id));
      ++(found ? local.deletes_found : local.deletes_missing);
      if (delete_found != nullptr && found) (*delete_found)[0] = 1;
    }
  } else {
    if (ops.size() > static_cast<size_t>(UINT32_MAX)) {
      return Status::InvalidArgument("update batch too large");
    }
    pending_.clear();
    uint64_t total_deletes = 0;
    for (const UpdateOp& op : ops) {
      const bool is_delete = op.kind == UpdateOp::Kind::kDelete;
      total_deletes += is_delete ? 1 : 0;
      pending_.push_back(PendingOp{Entry{op.rect, op.id}, /*target_level=*/0,
                                   is_delete, /*done=*/false});
    }
    bool first_pass = true;
    while (!pending_.empty()) {
      ++local.passes;
      RTB_RETURN_IF_ERROR(RunPass(&local));
      if (first_pass) {
        // Only the first pass carries the batch's deletes (orphan passes
        // are reinserts), and its pending_ indexes are the ops indexes, so
        // this is the one place the per-op found/missing answer exists.
        if (delete_found != nullptr) {
          for (size_t i = 0; i < pending_.size(); ++i) {
            if (pending_[i].is_delete && pending_[i].done) {
              (*delete_found)[i] = 1;
            }
          }
        }
        first_pass = false;
      }
      // Condensation orphans become the next pass's operations.
      pending_.swap(orphans_);
    }
    local.deletes_missing += total_deletes - local.deletes_found;
    // Shrink a single-child internal root, exactly as the serial Delete
    // does after reinsertion.
    for (;;) {
      RTB_ASSIGN_OR_RETURN(PageGuard guard, tree_->pool_->Fetch(tree_->root_));
      RTB_ASSIGN_OR_RETURN(
          NodeView view,
          NodeView::Create(guard.data(), tree_->pool_->page_size()));
      if (view.is_leaf() || view.count() != 1) break;
      tree_->root_ = static_cast<PageId>(view.id(0));
      --tree_->height_;
    }
  }
  // Batch boundary = commit boundary: describe the batch in the log (an
  // opaque record recovery skips — the page images carry redo/undo), then
  // let the pool image its modified pages and write ONE commit record. No
  // data-file I/O happens here (no-force); a crash from now until the next
  // commit rolls the tree back to exactly this point.
  if (storage::WalWriter* wal = tree_->pool_->attached_wal();
      wal != nullptr) {
    uint8_t desc[24];
    const uint64_t fields[3] = {local.inserts, local.deletes_found,
                                local.deletes_missing};
    for (size_t f = 0; f < 3; ++f) {
      for (size_t b = 0; b < 8; ++b) {
        desc[f * 8 + b] = static_cast<uint8_t>(fields[f] >> (8 * b));
      }
    }
    wal->AppendLogicalUpdate(desc, sizeof(desc));
    RTB_RETURN_IF_ERROR(tree_->pool_->WalCommit());
  }
  if (stats != nullptr) {
    stats->inserts += local.inserts;
    stats->deletes_found += local.deletes_found;
    stats->deletes_missing += local.deletes_missing;
    stats->node_accesses += local.node_accesses;
    stats->pages_mutated += local.pages_mutated;
    stats->splits += local.splits;
    stats->condensed_nodes += local.condensed_nodes;
    stats->passes += local.passes;
  }
  return Status::OK();
}

Status UpdateBatchExecutor::RunPass(UpdateBatchStats* stats) {
  parent_of_.clear();
  level_of_.clear();
  child_updates_.clear();
  orphans_.clear();
  RTB_RETURN_IF_ERROR(Locate(stats));
  std::sort(arrived_.begin(), arrived_.end());

  // Coalesce arrived items into per-page runs once; the level loop below
  // picks out each level's slice.
  struct Run {
    PageId page;
    uint32_t begin;
    uint32_t end;
  };
  std::vector<Run> runs;
  for (uint32_t k = 0; k < arrived_.size();) {
    const PageId page = ItemPage(arrived_[k]);
    uint32_t end = k + 1;
    while (end < arrived_.size() && ItemPage(arrived_[end]) == page) ++end;
    runs.push_back(Run{page, k, end});
    k = end;
  }

  // Apply bottom-up, one level per round: processing a node only queues
  // updates for its parent one level up, so by the time a level is
  // processed its pending set is complete. A node is pinned mutably once
  // per pass no matter how many operations and child updates land on it.
  // tree_->height_ is re-read each round because GrowRoot can raise it;
  // the new levels simply have nothing pending.
  std::vector<Run> work;
  for (uint16_t lvl = 0; lvl < tree_->height_; ++lvl) {
    work.clear();
    for (const Run& r : runs) {
      if (level_of_.at(r.page) == lvl) work.push_back(r);
    }
    for (const auto& [page, updates] : child_updates_) {
      if (updates.empty() || level_of_.at(page) != lvl) continue;
      const bool seen = std::any_of(
          work.begin(), work.end(),
          [page = page](const Run& r) { return r.page == page; });
      if (!seen) work.push_back(Run{page, 0, 0});
    }
    std::sort(work.begin(), work.end(),
              [](const Run& a, const Run& b) { return a.page < b.page; });
    for (const Run& r : work) {
      RTB_RETURN_IF_ERROR(ProcessNode(r.page, arrived_.data() + r.begin,
                                      r.end - r.begin, stats));
    }
  }
  return Status::OK();
}

Status UpdateBatchExecutor::Locate(UpdateBatchStats* stats) {
  storage::PageCache* pool = tree_->pool_;
  const uint16_t root_level = tree_->height_ - 1;
  const PageId root = tree_->root_;
  level_of_.emplace(root, root_level);
  frontier_.clear();
  arrived_.clear();
  for (uint32_t i = 0; i < pending_.size(); ++i) {
    if (pending_[i].target_level > root_level) {
      return Status::Corruption("orphan targets a level above the root");
    }
    (pending_[i].target_level == root_level ? arrived_ : frontier_)
        .push_back(PackItem(root, i));
  }
  const size_t window =
      std::min(kMaxFetchWindow, std::max<size_t>(1, pool->capacity() / 4));

  // One round per tree level; routing an internal page only emits items
  // one level down, so the frontier stays level-homogeneous.
  while (!frontier_.empty()) {
    std::sort(frontier_.begin(), frontier_.end());
    next_.clear();

    // Distinct-page runs of the sorted frontier.
    struct Run {
      PageId page;
      uint32_t begin;
      uint32_t end;
    };
    std::vector<Run> runs;
    for (uint32_t k = 0; k < frontier_.size();) {
      const PageId page = ItemPage(frontier_[k]);
      uint32_t end = k + 1;
      while (end < frontier_.size() && ItemPage(frontier_[end]) == page) {
        ++end;
      }
      runs.push_back(Run{page, k, end});
      stats->node_accesses += end - k;
      k = end;
    }

    for (size_t p = 0; p < runs.size(); p += window) {
      const size_t w = std::min(window, runs.size() - p);
      bool done = false;
      if (w > 1) {
        window_ids_.clear();
        for (size_t j = 0; j < w; ++j) window_ids_.push_back(runs[p + j].page);
        Result<std::vector<PageGuard>> guards =
            pool->FetchBatch(window_ids_.data(), w);
        if (guards.ok()) {
          for (size_t j = 0; j < w; ++j) {
            RTB_RETURN_IF_ERROR(RouteItems((*guards)[j], runs[p + j].begin,
                                           runs[p + j].end));
            (*guards)[j].Release();
          }
          done = true;
        }
        // A failed multi-get (pool too small for the window) degrades to
        // one page at a time, like BatchExecutor::ScanWindow.
      }
      if (!done) {
        for (size_t j = 0; j < w; ++j) {
          RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(runs[p + j].page));
          RTB_RETURN_IF_ERROR(
              RouteItems(guard, runs[p + j].begin, runs[p + j].end));
        }
      }
    }
    frontier_.swap(next_);
  }
  return Status::OK();
}

Status UpdateBatchExecutor::RouteItems(const PageGuard& guard, size_t begin,
                                       size_t end) {
  RTB_ASSIGN_OR_RETURN(
      Node node, DeserializeNode(guard.data(), tree_->pool_->page_size()));
  RTB_DCHECK(!node.is_leaf());
  const PageId page = guard.page_id();
  const uint16_t child_level = node.level - 1;
  for (size_t k = begin; k < end; ++k) {
    const uint32_t q = ItemOp(frontier_[k]);
    const PendingOp& op = pending_[q];
    auto route = [&](PageId child) {
      parent_of_.emplace(child, page);
      level_of_.emplace(child, child_level);
      (child_level == op.target_level ? arrived_ : next_)
          .push_back(PackItem(child, q));
    };
    if (op.is_delete) {
      // Guttman's delete descent: every child whose MBR contains the
      // target rectangle may hold the entry.
      for (const Entry& e : node.entries) {
        if (e.rect.Contains(op.entry.rect)) {
          route(static_cast<PageId>(e.id));
        }
      }
    } else {
      route(static_cast<PageId>(
          node.entries[tree_->ChooseSubtree(node, op.entry.rect)].id));
    }
  }
  return Status::OK();
}

Status UpdateBatchExecutor::ProcessNode(PageId page, const uint64_t* items,
                                        size_t nops,
                                        UpdateBatchStats* stats) {
  storage::PageCache* pool = tree_->pool_;
  const size_t page_size = pool->page_size();
  RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->FetchMutable(page));
  RTB_ASSIGN_OR_RETURN(Node node, DeserializeNode(guard.data(), page_size));
  ++stats->pages_mutated;
  ++stats->node_accesses;

  // 1. Target-level operations, in submission order (the arrived items are
  // sorted by (page, op index)). A delete applies at most once across the
  // candidate leaves its descent fanned out to; groups run in ascending
  // page order, so with duplicate entries the lowest-numbered page wins.
  for (size_t k = 0; k < nops; ++k) {
    PendingOp& op = pending_[ItemOp(items[k])];
    if (!op.is_delete) {
      node.entries.push_back(op.entry);
      ++stats->inserts;
      continue;
    }
    if (op.done) continue;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == op.entry.id &&
          node.entries[i].rect == op.entry.rect) {
        node.entries.erase(node.entries.begin() + static_cast<ptrdiff_t>(i));
        op.done = true;
        ++stats->deletes_found;
        break;
      }
    }
  }

  // 2. Child updates queued by the level below: tightened MBRs, dissolved
  // children, split siblings. Applied before this node's own resolution,
  // so a subsequent split distributes already-correct entries.
  if (auto it = child_updates_.find(page); it != child_updates_.end()) {
    for (const ChildUpdate& u : it->second) {
      if (u.kind == ChildUpdate::Kind::kAdd) {
        node.entries.push_back(u.add);
        continue;
      }
      const auto slot = std::find_if(
          node.entries.begin(), node.entries.end(), [&u](const Entry& e) {
            return static_cast<PageId>(e.id) == u.child;
          });
      if (slot == node.entries.end()) {
        return Status::Corruption("child update targets a missing slot");
      }
      if (u.kind == ChildUpdate::Kind::kRemove) {
        node.entries.erase(slot);
      } else {
        slot->rect = u.mbr;
      }
    }
    it->second.clear();
  }

  // 3. Resolve this node and queue its parent's update.
  const bool is_root = page == tree_->root_;
  const RTreeConfig& cfg = tree_->config_;
  auto queue_parent = [&](ChildUpdate update) -> Status {
    const auto parent = parent_of_.find(page);
    if (parent == parent_of_.end()) {
      return Status::Corruption("mutated node has no located parent");
    }
    child_updates_[parent->second].push_back(std::move(update));
    return Status::OK();
  };

  if (is_root && !node.is_leaf() && node.entries.empty()) {
    // Every child dissolved in this pass — only batches can do that (one
    // serial delete removes one entry). Rebuild from the orphans.
    return RecoverEmptyRoot(&guard, stats);
  }
  if (!is_root && node.entries.size() < cfg.min_entries) {
    // CondenseTree: dissolve the node, reinsert its remnants at this level
    // in the next pass. The page itself is abandoned, as in the serial
    // path; the remnant image is still written so the on-disk bytes stay a
    // decodable node.
    for (const Entry& e : node.entries) {
      orphans_.push_back(
          PendingOp{e, node.level, /*is_delete=*/false, /*done=*/false});
    }
    ++stats->condensed_nodes;
    RTB_RETURN_IF_ERROR(SerializeNode(node, page_size, guard.mutable_data()));
    return queue_parent(ChildUpdate{ChildUpdate::Kind::kRemove, page,
                                    Entry{}, Rect::Empty()});
  }
  if (node.entries.size() > cfg.max_entries) {
    if (is_root) return GrowRoot(&guard, std::move(node), stats);
    std::vector<std::vector<Entry>> groups;
    MultiSplit(std::move(node.entries), &groups);
    stats->splits += groups.size() - 1;
    Node kept{node.level, std::move(groups.front())};
    RTB_RETURN_IF_ERROR(SerializeNode(kept, page_size, guard.mutable_data()));
    RTB_RETURN_IF_ERROR(queue_parent(ChildUpdate{
        ChildUpdate::Kind::kMbr, page, Entry{}, kept.Mbr()}));
    for (size_t g = 1; g < groups.size(); ++g) {
      RTB_ASSIGN_OR_RETURN(PageGuard sibling_guard, pool->NewPage());
      Node sibling{node.level, std::move(groups[g])};
      RTB_RETURN_IF_ERROR(
          SerializeNode(sibling, page_size, sibling_guard.mutable_data()));
      RTB_RETURN_IF_ERROR(queue_parent(ChildUpdate{
          ChildUpdate::Kind::kAdd, storage::kInvalidPageId,
          Entry{sibling.Mbr(), sibling_guard.page_id()}, Rect::Empty()}));
    }
    return Status::OK();
  }
  RTB_RETURN_IF_ERROR(SerializeNode(node, page_size, guard.mutable_data()));
  if (is_root) return Status::OK();
  return queue_parent(
      ChildUpdate{ChildUpdate::Kind::kMbr, page, Entry{}, node.Mbr()});
}

void UpdateBatchExecutor::MultiSplit(
    std::vector<Entry> entries,
    std::vector<std::vector<Entry>>* groups) const {
  // The pairwise split only promises groups of >= min_entries; a node that
  // absorbed many net inserts can hand either group more than max_entries,
  // so overfull groups re-split until everything fits. Any overfull group
  // has > max >= 2 * min entries, so the minimum-fill guarantee holds at
  // every step.
  SplitResult split = SplitEntries(entries, tree_->config_);
  for (std::vector<Entry>* group : {&split.group_a, &split.group_b}) {
    if (group->size() > tree_->config_.max_entries) {
      MultiSplit(std::move(*group), groups);
    } else {
      groups->push_back(std::move(*group));
    }
  }
}

Status UpdateBatchExecutor::GrowRoot(PageGuard* root_guard, Node node,
                                     UpdateBatchStats* stats) {
  storage::PageCache* pool = tree_->pool_;
  const size_t page_size = pool->page_size();
  std::vector<std::vector<Entry>> groups;
  MultiSplit(std::move(node.entries), &groups);
  stats->splits += groups.size() - 1;
  Node kept{node.level, std::move(groups.front())};
  RTB_RETURN_IF_ERROR(
      SerializeNode(kept, page_size, root_guard->mutable_data()));
  std::vector<Entry> top;
  top.push_back(Entry{kept.Mbr(), tree_->root_});
  for (size_t g = 1; g < groups.size(); ++g) {
    RTB_ASSIGN_OR_RETURN(PageGuard sibling_guard, pool->NewPage());
    Node sibling{node.level, std::move(groups[g])};
    RTB_RETURN_IF_ERROR(
        SerializeNode(sibling, page_size, sibling_guard.mutable_data()));
    top.push_back(Entry{sibling.Mbr(), sibling_guard.page_id()});
  }
  // Grow until the top fits in one root. A batch can split a node into
  // many groups at once, so unlike the serial root split this may add
  // more than one level.
  uint16_t level = node.level + 1;
  for (;;) {
    if (top.size() <= tree_->config_.max_entries) {
      RTB_ASSIGN_OR_RETURN(PageGuard new_root, pool->NewPage());
      Node root_node{level, std::move(top)};
      RTB_RETURN_IF_ERROR(
          SerializeNode(root_node, page_size, new_root.mutable_data()));
      tree_->root_ = new_root.page_id();
      tree_->height_ = level + 1;
      return Status::OK();
    }
    groups.clear();
    MultiSplit(std::move(top), &groups);
    stats->splits += groups.size() - 1;
    top.clear();
    for (std::vector<Entry>& group : groups) {
      RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
      Node child{level, std::move(group)};
      RTB_RETURN_IF_ERROR(
          SerializeNode(child, page_size, guard.mutable_data()));
      top.push_back(Entry{child.Mbr(), guard.page_id()});
    }
    ++level;
  }
}

Status UpdateBatchExecutor::RecoverEmptyRoot(PageGuard* root_guard,
                                             UpdateBatchStats* stats) {
  const size_t page_size = tree_->pool_->page_size();
  if (orphans_.empty()) {
    // The batch deleted everything: back to a single empty leaf.
    Node empty_leaf;
    tree_->height_ = 1;
    return SerializeNode(empty_leaf, page_size, root_guard->mutable_data());
  }
  // The highest orphans must be re-homed now — the next pass cannot insert
  // at a level the shrunken tree no longer has. They become the new root's
  // entries (at their own level, so their subtrees hang one level below);
  // lower orphans re-enter through the next pass's descent.
  uint16_t top = 0;
  for (const PendingOp& orphan : orphans_) {
    top = std::max(top, orphan.target_level);
  }
  Node root_node;
  root_node.level = top;
  size_t kept = 0;
  for (PendingOp& orphan : orphans_) {
    if (orphan.target_level == top) {
      root_node.entries.push_back(orphan.entry);
    } else {
      orphans_[kept++] = std::move(orphan);
    }
  }
  orphans_.resize(kept);
  tree_->height_ = static_cast<uint16_t>(top + 1);
  if (root_node.entries.size() > tree_->config_.max_entries) {
    return GrowRoot(root_guard, std::move(root_node), stats);
  }
  return SerializeNode(root_node, page_size, root_guard->mutable_data());
}

}  // namespace rtb::rtree
