#include "rtree/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "storage/buffer_pool.h"

namespace rtb::rtree {

using geom::Point;
using geom::Rect;

double MinDistance(Point p, const Rect& r) {
  if (r.is_empty()) return std::numeric_limits<double>::infinity();
  double dx = 0.0;
  if (p.x < r.lo.x) {
    dx = r.lo.x - p.x;
  } else if (p.x > r.hi.x) {
    dx = p.x - r.hi.x;
  }
  double dy = 0.0;
  if (p.y < r.lo.y) {
    dy = r.lo.y - p.y;
  } else if (p.y > r.hi.y) {
    dy = p.y - r.hi.y;
  }
  return std::hypot(dx, dy);
}

namespace {

// Priority-queue element: either a node to expand or an object candidate.
struct QueueEntry {
  double distance = 0.0;
  bool is_object = false;
  uint64_t id = 0;  // PageId for nodes, ObjectId for objects.
  Rect rect;

  // Min-heap by distance; objects win ties so results emit before equally
  // distant subtrees are expanded needlessly.
  bool operator<(const QueueEntry& other) const {
    if (distance != other.distance) return distance > other.distance;
    return is_object < other.is_object;
  }
};

}  // namespace

Result<std::vector<Neighbor>> SearchKnn(const RTree& tree, Point point,
                                        size_t k, QueryStats* stats) {
  std::vector<Neighbor> result;
  if (k == 0) return result;

  std::priority_queue<QueueEntry> queue;
  queue.push(QueueEntry{0.0, false, tree.root(), Rect::Empty()});

  storage::PageCache* pool = tree.pool();
  while (!queue.empty() && result.size() < k) {
    QueueEntry top = queue.top();
    queue.pop();
    if (top.is_object) {
      result.push_back(Neighbor{top.id, top.distance, top.rect});
      continue;
    }
    RTB_ASSIGN_OR_RETURN(storage::PageGuard guard,
                         pool->Fetch(static_cast<storage::PageId>(top.id)));
    if (stats != nullptr) ++stats->nodes_accessed;
    RTB_ASSIGN_OR_RETURN(NodeView view,
                         NodeView::Create(guard.data(), pool->page_size()));
    for (uint16_t i = 0; i < view.count(); ++i) {
      const geom::Rect rect = view.rect(i);
      queue.push(QueueEntry{MinDistance(point, rect), view.is_leaf(),
                            view.id(i), rect});
    }
  }
  return result;
}

}  // namespace rtb::rtree
