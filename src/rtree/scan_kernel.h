// Vectorized node-scan kernel used by the batch executor.
//
// A node visit in the batched path tests one page's entries against many
// query rectangles. Entry coordinates live interleaved on the page (40-byte
// stride, see node.h); scanning them with NodeView::Intersects costs a
// strided load pattern per query. The kernel instead gathers the page's
// rects once into a structure-of-arrays scratch (xlo/ylo/xhi/yhi as dense
// double arrays) and then answers each query with a branch-free sweep that
// tests 2 (SSE2) or 4 (AVX2) entries per step, amortizing the gather over
// every query that shares the visit.
//
// Semantics match NodeView::Intersects exactly for a non-empty query `q`:
// slot i matches iff
//
//   xlo[i] <= q.hi.x && xhi[i] >= q.lo.x &&
//   ylo[i] <= q.hi.y && yhi[i] >= q.lo.y &&
//   xhi[i] >= xlo[i] && yhi[i] >= ylo[i]      (the entry is non-empty)
//
// The entry-validity term does not depend on the query, so it is computed
// once per gather and stored as a bitmask.
//
// Kernel selection: the widest instruction set the CPU supports is picked
// at runtime on first use (function multiversioning is not needed — the
// SIMD bodies carry `target` attributes and are only called behind a
// cpu-support check). On aarch64 the NEON sweep is the (only) vector
// kernel; it is part of the architecture baseline, so detection is purely
// a compile-time gate. Builds with -DRTB_SIMD=OFF compile the scalar sweep
// only. The environment variable RTB_SCAN_KERNEL=scalar|sse2|avx2|neon
// caps the initial choice (used by the forced-scalar CI leg), and
// SetScanKernel() overrides it programmatically (used by benches and
// tests). Requesting a kernel for the wrong architecture dispatches the
// scalar sweep.

#ifndef RTB_RTREE_SCAN_KERNEL_H_
#define RTB_RTREE_SCAN_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "rtree/node.h"

namespace rtb::rtree {

/// Which sweep implementation ScanIntersecting dispatches to. The numeric
/// order is the capability ladder used by BestScanKernel/SetScanKernel;
/// kNeon sits above the x86 kernels because the two families never coexist
/// in one binary and NEON is the widest (only) vector kernel on aarch64.
enum class ScanKernel {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
  kNeon = 3,
};

/// Human-readable kernel name ("scalar", "sse2", "avx2", "neon").
const char* ScanKernelName(ScanKernel k);

/// Widest kernel this binary + CPU can run (compile-time RTB_SIMD gate and
/// runtime cpuid check combined).
ScanKernel BestScanKernel();

/// Kernel currently used by ScanIntersecting. Initially the minimum of
/// BestScanKernel() and the RTB_SCAN_KERNEL environment override.
ScanKernel ActiveScanKernel();

/// Selects `k` for subsequent ScanIntersecting calls. Returns false (and
/// changes nothing) when the CPU or build cannot run `k`. kScalar always
/// succeeds.
bool SetScanKernel(ScanKernel k);

/// Structure-of-arrays copy of one node's entry rects plus a validity
/// bitmask. Reused across visits: Load() only grows its buffers, so a
/// scratch that lives for a whole batch run performs no steady-state heap
/// allocation. One scratch per thread (it is plain mutable state).
class ScanScratch {
 public:
  /// Gathers every entry rect of `view` (and recomputes the validity mask).
  /// The scratch holds a copy; the page bytes may be unpinned afterwards.
  void Load(NodeView view);

  uint16_t count() const { return count_; }
  uint16_t level() const { return level_; }
  bool is_leaf() const { return level_ == 0; }

  /// Entry id passthrough, captured at Load() time.
  uint64_t id(size_t i) const { return ids_[i]; }

  const double* xlo() const { return xlo_.data(); }
  const double* ylo() const { return ylo_.data(); }
  const double* xhi() const { return xhi_.data(); }
  const double* yhi() const { return yhi_.data(); }

  /// Bit i set when entry i is a non-empty rect. Word-packed, 64 per word.
  const uint64_t* valid() const { return valid_.data(); }

 private:
  std::vector<double> xlo_, ylo_, xhi_, yhi_;
  std::vector<uint64_t> ids_;
  std::vector<uint64_t> valid_;
  uint16_t count_ = 0;
  uint16_t level_ = 0;
};

/// Writes the slot indices of all entries in `scratch` intersecting the
/// non-empty query `q` to `out` (ascending order) and returns how many.
/// `out` must have room for scratch.count() indices.
size_t ScanIntersecting(const ScanScratch& scratch, const geom::Rect& q,
                        uint32_t* out);

}  // namespace rtb::rtree

#endif  // RTB_RTREE_SCAN_KERNEL_H_
