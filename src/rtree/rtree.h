// The R-tree proper: Guttman-style dynamic R-tree executing against a
// BufferPool, so every node touched by a query or update is a page request
// and every buffer miss is a counted disk access.
//
// Level convention: node.level == 0 at the leaves and increases toward the
// root (the paper numbers levels from the root down; the conversion is
// `paper_level = height - 1 - node.level`). `height` is the number of
// levels, so a tree with a single leaf-root has height 1.

#ifndef RTB_RTREE_RTREE_H_
#define RTB_RTREE_RTREE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "rtree/config.h"
#include "rtree/node.h"
#include "storage/buffer_pool.h"
#include "util/result.h"

namespace rtb::rtree {

/// Logical access counters for a single query or update.
struct QueryStats {
  uint64_t nodes_accessed = 0;
};

/// A dynamic R-tree over a buffer pool.
///
/// Updates require the pool capacity to be at least the tree height plus two
/// (the insertion path is pinned while descending); queries hold at most one
/// page pinned at a time and work with a pool of any capacity. RTree does
/// not own the pool.
class RTree {
 public:
  /// Creates a new empty tree (a single empty leaf node).
  static Result<RTree> Create(storage::PageCache* pool, RTreeConfig config);

  /// Attaches to an existing tree rooted at `root` with `height` levels
  /// (e.g. one produced by a bulk loader in rtree/bulk_load.h).
  static Result<RTree> Open(storage::PageCache* pool, RTreeConfig config,
                            storage::PageId root, uint16_t height);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;
  RTree(RTree&&) = default;
  RTree& operator=(RTree&&) = default;

  /// Inserts a rectangle with its object id (tuple-at-a-time, Guttman).
  Status Insert(const geom::Rect& rect, ObjectId id);

  /// Deletes the entry matching (rect, id) exactly. Returns true when the
  /// entry existed. Underflowing nodes are condensed and their entries
  /// reinserted (Guttman's CondenseTree).
  Result<bool> Delete(const geom::Rect& rect, ObjectId id);

  /// Region (intersection) query: appends the ids of all objects whose
  /// rectangle intersects `query` to `out`. `stats`, when non-null, receives
  /// the number of nodes accessed; disk accesses are observable through the
  /// pool's BufferStats.
  Status Search(const geom::Rect& query, std::vector<ObjectId>* out,
                QueryStats* stats = nullptr) const;

  /// Point query: all objects whose rectangle contains `p`.
  Status SearchPoint(geom::Point p, std::vector<ObjectId>* out,
                     QueryStats* stats = nullptr) const;

  /// Total number of leaf entries (walks the tree).
  Result<uint64_t> CountEntries() const;

  storage::PageId root() const { return root_; }
  uint16_t height() const { return height_; }
  const RTreeConfig& config() const { return config_; }
  storage::PageCache* pool() const { return pool_; }

 private:
  // The batched update path (update_batch.h) reuses the private descent
  // helpers and adjusts root_/height_ when a batch grows or shrinks the
  // tree.
  friend class UpdateBatchExecutor;

  RTree(storage::PageCache* pool, RTreeConfig config, storage::PageId root,
        uint16_t height)
      : pool_(pool), config_(config), root_(root), height_(height) {}

  // Result of a recursive insertion: the node's MBR after the insert and,
  // when it split, the entry describing the new sibling.
  struct InsertOutcome {
    geom::Rect mbr;
    std::optional<Entry> split;
  };

  // Entries stashed for reinsertion, tagged with their node level. Used by
  // delete-time condensation and by the R* forced-reinsert overflow
  // treatment.
  struct Orphan {
    Entry entry;
    uint16_t level;
  };

  // Per-top-level-insert state for the R* overflow treatment: which levels
  // already did a forced reinsert (they split on the next overflow), plus
  // the entries awaiting reinsertion.
  struct InsertContext {
    uint64_t reinserted_levels = 0;  // Bitmask by node level.
    std::vector<Orphan> pending;
  };

  // Inserts `entry` into a node at level `target_level` under `page`.
  // `ctx` may be null (plain Guttman behaviour, used by delete-time
  // reinsertion).
  Result<InsertOutcome> InsertRec(storage::PageId page, const Entry& entry,
                                  uint16_t target_level, InsertContext* ctx);

  // Runs InsertRec from the root and grows the tree if the root splits.
  Status InsertAtLevel(const Entry& entry, uint16_t target_level,
                       InsertContext* ctx);

  // Picks the child slot of `node` to descend into for `rect` (Guttman
  // least-enlargement, or R* overlap-minimization when the children are
  // leaves).
  size_t ChooseSubtree(const Node& node, const geom::Rect& rect) const;

  // Splits an overfull entry set, keeps group A in `page`, allocates a page
  // for group B, and returns the sibling entry (B's MBR + page id).
  Result<Entry> WriteSplit(storage::PageId page, uint16_t level,
                           const std::vector<Entry>& entries);

  // Writes `node` into `page`.
  Status WriteNode(storage::PageId page, const Node& node);

  // Result of a recursive delete.
  struct DeleteOutcome {
    bool found = false;
    geom::Rect mbr;        // Node MBR after deletion.
    bool underflow = false;  // Node fell below min fill and was dissolved.
  };

  Result<DeleteOutcome> DeleteRec(storage::PageId page,
                                  const geom::Rect& rect, ObjectId id,
                                  bool is_root, std::vector<Orphan>* orphans);

  storage::PageCache* pool_;
  RTreeConfig config_;
  storage::PageId root_;
  uint16_t height_;
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_RTREE_H_
