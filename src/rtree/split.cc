#include "rtree/split.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

#include "geom/rect.h"
#include "util/macros.h"

namespace rtb::rtree {
namespace {

using geom::Rect;
using geom::Union;

// Mutable split state shared by both heuristics' distribution phase.
struct Groups {
  std::vector<Entry> a;
  std::vector<Entry> b;
  Rect mbr_a = Rect::Empty();
  Rect mbr_b = Rect::Empty();

  void AddToA(const Entry& e) {
    a.push_back(e);
    mbr_a = Union(mbr_a, e.rect);
  }
  void AddToB(const Entry& e) {
    b.push_back(e);
    mbr_b = Union(mbr_b, e.rect);
  }
};

// True when every remaining entry must go to one group to reach the minimum
// fill. `remaining` counts unassigned entries.
bool MustFill(size_t group_size, size_t remaining, uint32_t min_entries) {
  return group_size + remaining <= min_entries;
}

}  // namespace

SplitResult QuadraticSplit(const std::vector<Entry>& entries,
                           const RTreeConfig& config) {
  RTB_CHECK(entries.size() >= 2);
  const size_t n = entries.size();

  // PickSeeds: the pair (i, j) maximizing the dead area of their union.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double waste = Union(entries[i].rect, entries[j].rect).Area() -
                     entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  Groups g;
  g.AddToA(entries[seed_a]);
  g.AddToB(entries[seed_b]);

  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;

  while (remaining > 0) {
    if (MustFill(g.a.size(), remaining, config.min_entries)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) g.AddToA(entries[i]);
      }
      remaining = 0;
      break;
    }
    if (MustFill(g.b.size(), remaining, config.min_entries)) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) g.AddToB(entries[i]);
      }
      remaining = 0;
      break;
    }

    // PickNext: unassigned entry with the greatest |d1 - d2| where d1/d2 are
    // the enlargements of the two group MBRs.
    size_t next = n;
    double best_diff = -1.0;
    double next_d1 = 0.0, next_d2 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      double d1 = geom::Enlargement(g.mbr_a, entries[i].rect);
      double d2 = geom::Enlargement(g.mbr_b, entries[i].rect);
      double diff = std::abs(d1 - d2);
      if (diff > best_diff) {
        best_diff = diff;
        next = i;
        next_d1 = d1;
        next_d2 = d2;
      }
    }
    RTB_DCHECK(next < n);

    bool to_a;
    if (next_d1 != next_d2) {
      to_a = next_d1 < next_d2;
    } else if (g.mbr_a.Area() != g.mbr_b.Area()) {
      to_a = g.mbr_a.Area() < g.mbr_b.Area();
    } else {
      to_a = g.a.size() <= g.b.size();
    }
    if (to_a) {
      g.AddToA(entries[next]);
    } else {
      g.AddToB(entries[next]);
    }
    assigned[next] = true;
    --remaining;
  }

  return SplitResult{std::move(g.a), std::move(g.b)};
}

SplitResult LinearSplit(const std::vector<Entry>& entries,
                        const RTreeConfig& config) {
  RTB_CHECK(entries.size() >= 2);
  const size_t n = entries.size();

  // LinearPickSeeds: per dimension, find the entry with the highest low side
  // and the one with the lowest high side; normalize their separation by the
  // extent of the whole set along that dimension.
  double best_sep = -std::numeric_limits<double>::infinity();
  size_t seed_a = 0, seed_b = 1;
  for (int dim = 0; dim < 2; ++dim) {
    auto lo_of = [dim](const Entry& e) {
      return dim == 0 ? e.rect.lo.x : e.rect.lo.y;
    };
    auto hi_of = [dim](const Entry& e) {
      return dim == 0 ? e.rect.hi.x : e.rect.hi.y;
    };
    size_t highest_lo = 0, lowest_hi = 0;
    double min_lo = lo_of(entries[0]), max_hi = hi_of(entries[0]);
    for (size_t i = 1; i < n; ++i) {
      if (lo_of(entries[i]) > lo_of(entries[highest_lo])) highest_lo = i;
      if (hi_of(entries[i]) < hi_of(entries[lowest_hi])) lowest_hi = i;
      min_lo = std::min(min_lo, lo_of(entries[i]));
      max_hi = std::max(max_hi, hi_of(entries[i]));
    }
    if (highest_lo == lowest_hi) continue;  // Degenerate along this axis.
    double extent = max_hi - min_lo;
    double sep = lo_of(entries[highest_lo]) - hi_of(entries[lowest_hi]);
    double norm = extent > 0.0 ? sep / extent : sep;
    if (norm > best_sep) {
      best_sep = norm;
      seed_a = lowest_hi;
      seed_b = highest_lo;
    }
  }
  if (seed_a == seed_b) seed_b = (seed_a + 1) % n;

  Groups g;
  g.AddToA(entries[seed_a]);
  g.AddToB(entries[seed_b]);

  size_t remaining = n - 2;
  for (size_t i = 0; i < n; ++i) {
    if (i == seed_a || i == seed_b) continue;
    if (MustFill(g.a.size(), remaining, config.min_entries)) {
      g.AddToA(entries[i]);
      --remaining;
      continue;
    }
    if (MustFill(g.b.size(), remaining, config.min_entries)) {
      g.AddToB(entries[i]);
      --remaining;
      continue;
    }
    double d1 = geom::Enlargement(g.mbr_a, entries[i].rect);
    double d2 = geom::Enlargement(g.mbr_b, entries[i].rect);
    bool to_a;
    if (d1 != d2) {
      to_a = d1 < d2;
    } else if (g.mbr_a.Area() != g.mbr_b.Area()) {
      to_a = g.mbr_a.Area() < g.mbr_b.Area();
    } else {
      to_a = g.a.size() <= g.b.size();
    }
    if (to_a) {
      g.AddToA(entries[i]);
    } else {
      g.AddToB(entries[i]);
    }
    --remaining;
  }

  return SplitResult{std::move(g.a), std::move(g.b)};
}

SplitResult RStarSplit(const std::vector<Entry>& entries,
                       const RTreeConfig& config) {
  RTB_CHECK(entries.size() >= 2);
  const size_t n = entries.size();
  const size_t m = std::min<size_t>(config.min_entries, n / 2);
  RTB_CHECK(m >= 1 || n == 2);
  const size_t min_group = std::max<size_t>(m, 1);

  // For each axis, two sort orders (by lo and by hi); evaluate every split
  // position k in [min_group, n - min_group] on both orders.
  struct Candidate {
    std::vector<Entry> sorted;
    size_t split_at = 0;
    double overlap = 0.0;
    double area = 0.0;
  };

  double best_axis_perimeter[2] = {0.0, 0.0};
  Candidate best_candidate[2];  // Best distribution per axis.

  for (int axis = 0; axis < 2; ++axis) {
    double axis_perimeter = 0.0;
    Candidate axis_best;
    bool axis_has_best = false;
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::vector<Entry> sorted = entries;
      std::stable_sort(sorted.begin(), sorted.end(),
                       [axis, by_hi](const Entry& a, const Entry& b) {
                         double ka = axis == 0
                                         ? (by_hi ? a.rect.hi.x : a.rect.lo.x)
                                         : (by_hi ? a.rect.hi.y : a.rect.lo.y);
                         double kb = axis == 0
                                         ? (by_hi ? b.rect.hi.x : b.rect.lo.x)
                                         : (by_hi ? b.rect.hi.y : b.rect.lo.y);
                         return ka < kb;
                       });
      // Prefix/suffix MBRs for O(n) evaluation of all distributions.
      std::vector<Rect> prefix(n), suffix(n);
      prefix[0] = sorted[0].rect;
      for (size_t i = 1; i < n; ++i) {
        prefix[i] = Union(prefix[i - 1], sorted[i].rect);
      }
      suffix[n - 1] = sorted[n - 1].rect;
      for (size_t i = n - 1; i > 0; --i) {
        suffix[i - 1] = Union(suffix[i], sorted[i - 1].rect);
      }
      for (size_t k = min_group; k + min_group <= n; ++k) {
        const Rect& a = prefix[k - 1];
        const Rect& b = suffix[k];
        axis_perimeter += a.Perimeter() + b.Perimeter();
        double overlap = geom::Intersection(a, b).Area();
        double area = a.Area() + b.Area();
        if (!axis_has_best || overlap < axis_best.overlap ||
            (overlap == axis_best.overlap && area < axis_best.area)) {
          axis_best.sorted = sorted;
          axis_best.split_at = k;
          axis_best.overlap = overlap;
          axis_best.area = area;
          axis_has_best = true;
        }
      }
    }
    best_axis_perimeter[axis] = axis_perimeter;
    best_candidate[axis] = std::move(axis_best);
  }

  const int axis =
      best_axis_perimeter[0] <= best_axis_perimeter[1] ? 0 : 1;
  Candidate& chosen = best_candidate[axis];
  SplitResult result;
  result.group_a.assign(chosen.sorted.begin(),
                        chosen.sorted.begin() +
                            static_cast<ptrdiff_t>(chosen.split_at));
  result.group_b.assign(chosen.sorted.begin() +
                            static_cast<ptrdiff_t>(chosen.split_at),
                        chosen.sorted.end());
  return result;
}

SplitResult SplitEntries(const std::vector<Entry>& entries,
                         const RTreeConfig& config) {
  switch (config.split_policy) {
    case SplitPolicy::kQuadratic:
      return QuadraticSplit(entries, config);
    case SplitPolicy::kLinear:
      return LinearSplit(entries, config);
    case SplitPolicy::kRStar:
      return RStarSplit(entries, config);
  }
  RTB_CHECK(false);
  return SplitResult{};
}

}  // namespace rtb::rtree
