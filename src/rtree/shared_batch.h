// SharedBatchExecutor: one page-ordered frontier shared by every worker.
//
// BatchExecutor (batch.h) coalesces duplicate page visits *within one
// worker's batch*; with several workers each sweeping a private frontier,
// the same page can still be pinned once per worker per round. This
// executor lifts the frontier to a single global work queue: all workers'
// queries descend level-synchronously together, the merged frontier is
// sorted by page id once per level, and workers claim disjoint windows of
// the page runs — so a page shared by queries of different workers is
// pinned exactly once per round, by whichever worker claims its window.
// The elevator sweep is preserved globally (alternate rounds walk the runs
// high-to-low), which is strictly stronger than per-worker elevators: the
// whole fleet turns around together, so the pool's resident tail is reused
// across every worker, not just within one.
//
// The cost of sharing is synchronization: one barrier per tree level plus
// one per round. Page claims use a single atomic cursor over the sorted
// runs; a claimed window is scanned entirely by its claimer, including
// frontier items that belong to other workers' queries, so leaf matches are
// collected per (global query, object) and handed back to the owning
// worker at the end of the round.
//
// Collective contract: Run() is a collective operation — all `workers`
// threads must call it once per round, with worker ids 0..workers-1, even
// when a worker's query slice is empty that round (the call still
// participates in the barriers). All workers return the same status; on a
// mid-round error every worker returns that first error after the fleet
// drains at the next barrier, so no thread is left waiting. Transient pool
// exhaustion (peers' window pins momentarily hogging a shard) is not an
// error: the worker backs off pin-free and retries, since every pin taken
// inside a window is released inside that window.
//
// Determinism: the merged frontier is sorted and duplicate-free per level,
// so result sets and the global node/page counters are pure functions of
// the query set — window claiming only decides *which worker* scans a page,
// never whether it is scanned. Per-query result order is unspecified (as
// with BatchExecutor); stats are global counts, reported once via worker
// 0's BatchStats rather than attributed per worker.

#ifndef RTB_RTREE_SHARED_BATCH_H_
#define RTB_RTREE_SHARED_BATCH_H_

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "rtree/batch.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "rtree/scan_kernel.h"
#include "storage/buffer_pool.h"
#include "util/result.h"

namespace rtb::rtree {

/// Level-synchronous executor over one frontier shared by `workers`
/// threads. The tree's page cache must be thread-safe when workers > 1
/// (ShardedBufferPool); workers == 1 degenerates to a (slower) serial
/// BatchExecutor and accepts the serial BufferPool.
class SharedBatchExecutor {
 public:
  /// The executor does not own `tree`; it must outlive the executor.
  SharedBatchExecutor(const RTree* tree, uint32_t workers);

  SharedBatchExecutor(const SharedBatchExecutor&) = delete;
  SharedBatchExecutor& operator=(const SharedBatchExecutor&) = delete;

  uint32_t workers() const { return workers_; }

  /// Collective: executes one round in which worker `worker` contributes
  /// `queries` (possibly empty) and receives its matches in `results`
  /// (resized to queries.size()). Every worker must call Run once per
  /// round. `stats` is accumulated with the *global* round counters on
  /// worker 0 only (other workers' stats are untouched), so summing
  /// per-worker stats still yields the correct total.
  Status Run(uint32_t worker, std::span<const geom::Rect> queries,
             std::vector<std::vector<ObjectId>>* results,
             BatchStats* stats = nullptr);

 private:
  // Frontier items pack (page, global query) like BatchExecutor.
  static constexpr uint64_t PackItem(storage::PageId page, uint32_t query) {
    return (static_cast<uint64_t>(page) << 32) | query;
  }
  static constexpr storage::PageId ItemPage(uint64_t item) {
    return static_cast<storage::PageId>(item >> 32);
  }
  static constexpr uint32_t ItemQuery(uint64_t item) {
    return static_cast<uint32_t>(item);
  }

  struct PageRun {
    storage::PageId page = storage::kInvalidPageId;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  // Everything one worker writes during a round, padded so two workers'
  // hot scratch never shares a cache line.
  struct alignas(64) WorkerState {
    // Set by the worker before the round's first barrier.
    std::span<const geom::Rect> queries;
    uint32_t offset = 0;  // Global id of this worker's first query.
    // Items for the next level, in global query ids. Merged by the level
    // barrier's completion step.
    std::vector<uint64_t> emit;
    // Leaf matches found by this worker for *any* worker's query.
    std::vector<std::pair<uint32_t, ObjectId>> matches;
    ScanScratch scratch;
    std::vector<uint32_t> match_idx;
    std::vector<storage::PageId> window_ids;
  };

  // Barrier completion: runs exactly once per cycle, after every worker
  // arrived and before any is released.
  struct RoundSync {
    SharedBatchExecutor* self;
    void operator()() noexcept { self->OnBarrier(); }
  };

  enum class Phase { kStart, kLevel };

  void OnBarrier() noexcept;
  void StartRound() noexcept;
  void BuildLevel() noexcept;

  // Fetches and scans runs_[p, p+w) into this worker's emit/matches.
  Status ProcessWindow(uint32_t worker, size_t p, size_t w);
  Status VisitRun(uint32_t worker, const storage::PageGuard& guard,
                  size_t begin, size_t end);

  void RecordError(Status s);

  const RTree* tree_;
  const uint32_t workers_;
  std::vector<WorkerState> states_;

  // Round-global state. Written only by the barrier completion step (or
  // before the round's first barrier by the owning worker), so the barrier
  // itself provides the ordering; cursor_ and failed_ are the exceptions
  // workers race on mid-level.
  std::vector<geom::Rect> all_queries_;
  std::vector<uint64_t> frontier_;
  std::vector<PageRun> runs_;
  std::atomic<size_t> cursor_{0};
  std::atomic<bool> failed_{false};
  std::mutex err_mu_;
  Status first_error_;
  size_t window_ = 1;
  bool round_reverse_ = false;   // This round's elevator direction.
  bool sweep_reverse_ = false;   // Flips every round.
  bool round_done_ = false;
  uint64_t round_nodes_ = 0;
  uint64_t round_pages_ = 0;
  Phase phase_ = Phase::kStart;

  std::barrier<RoundSync> barrier_;
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_SHARED_BATCH_H_
