// TreeSummary: the "list of the MBRs for all nodes at all levels" that both
// the paper's analytical model and its simulator take as input (Sections 3
// and 4), extracted from a real tree.
//
// Nodes are recorded in preorder (root first, then each subtree depth-first)
// so that iterating the node array and keeping only the nodes whose MBR
// intersects a query reproduces the exact page-request order of a recursive
// R-tree traversal.

#ifndef RTB_RTREE_SUMMARY_H_
#define RTB_RTREE_SUMMARY_H_

#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "rtree/node.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::rtree {

/// Sentinel parent index for the root node.
inline constexpr uint32_t kNoParent = 0xFFFFFFFFu;

/// Geometry and position of one node.
struct NodeInfo {
  geom::Rect mbr;
  uint16_t level = 0;  // Leaf = 0, increasing toward the root.
  storage::PageId page = storage::kInvalidPageId;
  uint32_t parent = kNoParent;  // Index into TreeSummary::nodes().
  uint32_t num_entries = 0;
};

/// Immutable geometric snapshot of a tree.
class TreeSummary {
 public:
  /// Walks the tree rooted at `root` inside `store`. Reads pages directly
  /// from the store (counted there; callers reset stats when extraction
  /// should not appear in experiment counters).
  static Result<TreeSummary> Extract(storage::PageStore* store,
                                     storage::PageId root);

  const std::vector<NodeInfo>& nodes() const { return nodes_; }

  /// Number of levels (a lone leaf-root gives 1).
  uint16_t height() const { return height_; }

  /// M: total number of nodes.
  size_t NumNodes() const { return nodes_.size(); }

  /// Number of nodes at internal level `level` (leaf = 0).
  uint32_t NodesAtLevel(uint16_t level) const {
    return level < level_counts_.size() ? level_counts_[level] : 0;
  }

  /// Number of nodes at the paper's level numbering (0 = root, height-1 =
  /// leaves).
  uint32_t NodesAtPaperLevel(uint16_t paper_level) const {
    if (paper_level >= height_) return 0;
    return NodesAtLevel(static_cast<uint16_t>(height_ - 1 - paper_level));
  }

  /// A: sum of all node MBR areas.
  double TotalArea() const { return total_area_; }

  /// Lx: sum of all MBR x-extents.
  double TotalXExtent() const { return total_x_extent_; }

  /// Ly: sum of all MBR y-extents.
  double TotalYExtent() const { return total_y_extent_; }

  /// Total number of leaf entries (data rectangles).
  uint64_t NumDataEntries() const { return num_data_entries_; }

  /// Number of pages occupied by the top `levels` levels of the tree (the
  /// pages a "pin the top k levels" policy would pin). levels >= height
  /// pins everything.
  uint64_t PagesInTopLevels(uint16_t levels) const;

  /// Average node fill (entries / max observed capacity is the caller's
  /// business; this is the raw mean entry count).
  double MeanEntriesPerNode() const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<uint32_t> level_counts_;
  uint16_t height_ = 0;
  double total_area_ = 0.0;
  double total_x_extent_ = 0.0;
  double total_y_extent_ = 0.0;
  uint64_t num_data_entries_ = 0;
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_SUMMARY_H_
