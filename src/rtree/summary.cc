#include "rtree/summary.h"

#include <string>
#include <utility>

#include "util/macros.h"

namespace rtb::rtree {

namespace {

// Recursive preorder walk. `parent_index` is the index of the caller's
// NodeInfo, kNoParent for the root.
Status Walk(storage::PageStore* store, storage::PageId page,
            uint32_t parent_index, std::vector<uint8_t>* scratch,
            std::vector<NodeInfo>* nodes, uint64_t* num_data_entries) {
  RTB_RETURN_IF_ERROR(store->Read(page, scratch->data()));
  Result<NodeView> node = NodeView::Create(scratch->data(),
                                           store->page_size());
  if (!node.ok()) return node.status();

  NodeInfo info;
  info.mbr = node->Mbr();
  info.level = node->level();
  info.page = page;
  info.parent = parent_index;
  info.num_entries = node->count();
  uint32_t my_index = static_cast<uint32_t>(nodes->size());
  nodes->push_back(info);

  if (node->is_leaf()) {
    *num_data_entries += node->count();
    return Status::OK();
  }
  // Copy child ids before recursing (scratch is reused).
  std::vector<storage::PageId> children;
  children.reserve(node->count());
  for (uint16_t i = 0; i < node->count(); ++i) {
    children.push_back(static_cast<storage::PageId>(node->id(i)));
  }
  for (storage::PageId child : children) {
    RTB_RETURN_IF_ERROR(
        Walk(store, child, my_index, scratch, nodes, num_data_entries));
  }
  return Status::OK();
}

}  // namespace

Result<TreeSummary> TreeSummary::Extract(storage::PageStore* store,
                                         storage::PageId root) {
  TreeSummary summary;
  std::vector<uint8_t> scratch(store->page_size());
  RTB_RETURN_IF_ERROR(Walk(store, root, kNoParent, &scratch, &summary.nodes_,
                           &summary.num_data_entries_));
  RTB_CHECK(!summary.nodes_.empty());
  summary.height_ = static_cast<uint16_t>(summary.nodes_[0].level + 1);
  summary.level_counts_.assign(summary.height_, 0);
  for (const NodeInfo& info : summary.nodes_) {
    if (info.level >= summary.height_) {
      return Status::Corruption("node level " + std::to_string(info.level) +
                                " exceeds root level");
    }
    ++summary.level_counts_[info.level];
    summary.total_area_ += info.mbr.Area();
    summary.total_x_extent_ += info.mbr.XExtent();
    summary.total_y_extent_ += info.mbr.YExtent();
  }
  return summary;
}

uint64_t TreeSummary::PagesInTopLevels(uint16_t levels) const {
  uint64_t total = 0;
  for (uint16_t paper_level = 0; paper_level < levels && paper_level < height_;
       ++paper_level) {
    total += NodesAtPaperLevel(paper_level);
  }
  return total;
}

double TreeSummary::MeanEntriesPerNode() const {
  if (nodes_.empty()) return 0.0;
  uint64_t total = 0;
  for (const NodeInfo& info : nodes_) total += info.num_entries;
  return static_cast<double>(total) / static_cast<double>(nodes_.size());
}

}  // namespace rtb::rtree
