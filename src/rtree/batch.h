// BatchExecutor: level-synchronous execution of a batch of region queries
// with a page-ordered frontier.
//
// The serial path (RTree::Search) runs one query root-to-leaf at a time, so
// a page shared by many queries is re-requested once per query and its
// residency is at the mercy of the interleaving — the paper's point that
// *access order*, not visit count, drives buffer performance. The batch
// executor inverts the loops: all queries descend together, one level per
// round. Each round collects (page, query) pairs, sorts them by page id,
// and walks the runs of equal pages — each distinct page is pinned exactly
// once per batch, its entries are gathered once into a
// structure-of-arrays scratch (scan_kernel.h), and every interested query
// is answered from that gather with the SIMD sweep. The effect on the
// buffer is that of a much larger pool: within a batch no page can be
// evicted between two queries that both need it, because the second use
// happens during the single pin.
//
// Equivalences with the serial path (asserted in batch_query_test):
//   * per-query result sets are identical (order within a query may differ;
//     both sides are set-equal),
//   * summed logical node accesses are identical — query q visits node n in
//     either mode iff q intersects the parent entry of n,
//   * page *requests* per batch are <= the serial count: each distinct
//     frontier page is requested once, never once per query. Disk *reads*
//     are not point-wise comparable on a constrained pool — reordering the
//     accesses changes LRU's eviction decisions — but the requests saved
//     are hits by construction, which is what the effective hit rate in
//     bench/micro_batch_query measures.
//
// The executor issues its pins through PageCache::FetchBatch in a small
// window (a few pages at a time, bounded by a fraction of the pool
// capacity), which lets ShardedBufferPool take one shard lock per coalesced
// run. On a pool too small to hold a window (including the 1-frame pool)
// it degrades to fetch-scan-release per page, so any pool capacity >= 1
// works, exactly like the serial search.

#ifndef RTB_RTREE_BATCH_H_
#define RTB_RTREE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "rtree/node.h"
#include "rtree/rtree.h"
#include "rtree/scan_kernel.h"
#include "storage/buffer_pool.h"
#include "util/result.h"

namespace rtb::rtree {

/// Counters for one Run() call (accumulated across calls until reset).
struct BatchStats {
  /// Logical (node, query) visits — comparable to the sum of per-query
  /// QueryStats::nodes_accessed in the serial path.
  uint64_t node_accesses = 0;
  /// Distinct pages pinned; within one batch each frontier page counts
  /// once no matter how many queries share it.
  uint64_t page_visits = 0;
};

/// Executes batches of region queries against one tree. Holds reusable
/// frontier and gather scratch, so one executor per worker thread; the
/// underlying pool must be thread-safe if executors run concurrently.
class BatchExecutor {
 public:
  /// The executor does not own `tree`; it must outlive the executor.
  explicit BatchExecutor(const RTree* tree);

  /// Runs every query in `queries` and fills `results` (resized to
  /// queries.size(); results->at(i) holds the ids matching queries[i], in
  /// unspecified order). Empty queries match nothing and touch no pages.
  /// `stats`, when non-null, is accumulated into.
  Status Run(std::span<const geom::Rect> queries,
             std::vector<std::vector<ObjectId>>* results,
             BatchStats* stats = nullptr);

 private:
  // A frontier item is (page, query) packed as page << 32 | query, so the
  // per-level sort by (page, query) is a branchless sort of plain uint64_t.
  static constexpr uint64_t PackItem(storage::PageId page, uint32_t query) {
    return (static_cast<uint64_t>(page) << 32) | query;
  }
  static constexpr storage::PageId ItemPage(uint64_t item) {
    return static_cast<storage::PageId>(item >> 32);
  }
  static constexpr uint32_t ItemQuery(uint64_t item) {
    return static_cast<uint32_t>(item);
  }

  // One coalesced run of frontier items sharing a page: frontier_[begin,
  // end) all reference `page`.
  struct PageRun {
    storage::PageId page = storage::kInvalidPageId;
    uint32_t begin = 0;
    uint32_t end = 0;
  };

  // Scans the already-pinned page for the frontier run [begin, end) (all
  // items share the page). Leaf matches append to (*results)[q]; internal
  // matches push the child on next_.
  Status VisitPage(const storage::PageGuard& guard, size_t begin, size_t end,
                   std::span<const geom::Rect> queries,
                   std::vector<std::vector<ObjectId>>* results);

  // Fetches and scans the window of runs_[p, p+w): a windowed FetchBatch
  // when w > 1, degrading to fetch-scan-release per page when the multi-get
  // fails (pool too small) or w == 1. The synchronous inner loop of Run.
  Status ScanWindow(storage::PageCache* pool, size_t p, size_t w,
                    std::span<const geom::Rect> queries,
                    std::vector<std::vector<ObjectId>>* results);

  // The double-buffered variant of one level's window loop, used when the
  // async read seam is on: window N+1's misses are submitted (via
  // BeginFetchBatch) before window N's pages are scanned, so the store read
  // overlaps the SIMD scan. Falls back to ScanWindow per window whenever a
  // Begin fails (e.g. not enough unpinned frames to hold two windows).
  Status RunLevelAsync(storage::PageCache* pool, size_t window,
                       std::span<const geom::Rect> queries,
                       std::vector<std::vector<ObjectId>>* results);

  const RTree* tree_;
  ScanScratch scratch_;
  std::vector<uint64_t> frontier_;
  std::vector<uint64_t> next_;
  std::vector<uint32_t> match_idx_;
  std::vector<PageRun> runs_;
  std::vector<storage::PageId> window_ids_;
  // Elevator sweep: consecutive batches walk the sorted frontier in
  // alternating directions, so a sweep starts with the pages the previous
  // one finished on — the part of the working set an LRU pool still holds.
  // A fixed ascending sweep would instead evict its own tail every batch
  // (sequential flooding) and turn repeat visits across batches into
  // misses; see DESIGN.md §10.
  bool reverse_sweep_ = false;
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_BATCH_H_
