// UpdateBatchExecutor: level-synchronous execution of a batch of inserts
// and deletes with group-by-leaf writes.
//
// The serial path (RTree::Insert / RTree::Delete) runs one update
// root-to-leaf at a time: a leaf receiving k updates is pinned, decoded,
// re-serialized and written back k times, and every node on the path is
// rewritten per update. The batch executor inverts the loops the same way
// BatchExecutor does for queries: all pending updates descend together —
// inserts along their ChooseSubtree path, deletes fanning out through every
// containing child — one level per round, with the frontier sorted by page
// id so each distinct page is pinned once per round. When the descent
// reaches the target level the operations are grouped by leaf and each
// group is applied under a single mutable pin; the dirtied leaves are
// page-id-adjacent after a bulk load, so the pool's flush and eviction
// writebacks coalesce them into vectored writes (PageStore::WriteBatch).
//
// Structure changes feed back into the same batch:
//   * a node driven past max_entries by net inserts is split, possibly
//     into more than two groups (a quadratic/linear/R* split is applied
//     recursively until every group fits) — the new siblings join the
//     parent's pending child updates;
//   * a node driven below min_entries by net deletes is dissolved exactly
//     as in Guttman's CondenseTree: its remaining entries become orphans
//     tagged with the node's level and re-enter the executor as the next
//     pass's operations, located and grouped like any other batch;
//   * parent MBRs are updated level by level (each touched parent pinned
//     once per round), the root grows when it overflows and is rebuilt
//     from the highest orphans when a round dissolves all of its children,
//     and a single-child internal root is shrunk after the last pass.
//
// Equivalence with the serial path: a batch of size <= 1 delegates to
// RTree::Insert / RTree::Delete and is byte-identical to it by
// construction. Larger batches are logically equivalent (same multiset of
// leaf entries, structurally valid tree) but not byte-identical — the
// batched descent chooses subtrees against the batch-start state, applies
// plain (non-forced-reinsert) overflow handling, and when duplicate
// (rect, id) entries exist in several leaves a delete may remove a
// different copy than the serial order would. Deletes locate against the
// batch-start state; deleting an entry inserted by the same batch is
// unspecified. update_batch_test asserts both contracts against the
// serial oracle.

#ifndef RTB_RTREE_UPDATE_BATCH_H_
#define RTB_RTREE_UPDATE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "geom/rect.h"
#include "rtree/node.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "util/result.h"

namespace rtb::rtree {

/// One pending update: an insertion or an exact-match deletion.
struct UpdateOp {
  enum class Kind : uint8_t { kInsert, kDelete };

  Kind kind = Kind::kInsert;
  geom::Rect rect;
  ObjectId id = 0;

  static UpdateOp Insert(const geom::Rect& rect, ObjectId id) {
    return UpdateOp{Kind::kInsert, rect, id};
  }
  static UpdateOp Delete(const geom::Rect& rect, ObjectId id) {
    return UpdateOp{Kind::kDelete, rect, id};
  }
};

/// Counters for Run() calls (accumulated across calls until reset).
struct UpdateBatchStats {
  uint64_t inserts = 0;         ///< Entries added to leaves.
  uint64_t deletes_found = 0;   ///< Delete ops that removed an entry.
  uint64_t deletes_missing = 0; ///< Delete ops whose entry did not exist.
  /// Logical (node, op) visits during descent plus one per mutated node —
  /// comparable to summing serial per-update path lengths.
  uint64_t node_accesses = 0;
  /// Nodes pinned mutably; within one pass each touched node counts once
  /// no matter how many operations land on it.
  uint64_t pages_mutated = 0;
  uint64_t splits = 0;           ///< Nodes split (k-way counts k-1).
  uint64_t condensed_nodes = 0;  ///< Underflowing nodes dissolved.
  uint64_t passes = 0;           ///< Locate/apply rounds incl. orphan passes.
};

/// Executes batches of inserts/deletes against one tree. Holds reusable
/// frontier and grouping scratch, so one executor per thread; updates
/// mutate the tree, so unlike BatchExecutor concurrent executors on one
/// tree are not supported.
class UpdateBatchExecutor {
 public:
  /// The executor does not own `tree`; it must outlive the executor.
  explicit UpdateBatchExecutor(RTree* tree);

  /// Applies every operation in `ops` in submission order semantics (a
  /// delete locates against the batch-start tree and removes at most one
  /// entry). `stats`, when non-null, is accumulated into. `delete_found`,
  /// when non-null, is resized to ops.size(); entry i becomes 1 when op i
  /// is a delete that removed an entry, 0 otherwise — the per-op answer a
  /// serving tier needs to fan DELETE replies back out of a coalesced
  /// batch. On error the tree may hold a partially applied batch; the pool
  /// and pages stay structurally consistent (same contract as a failed
  /// serial update).
  Status Run(std::span<const UpdateOp> ops, UpdateBatchStats* stats = nullptr,
             std::vector<uint8_t>* delete_found = nullptr);

 private:
  // An operation in flight: the original batch's inserts/deletes plus
  // orphans produced by condensation, which are inserts targeting the
  // level the dissolved node occupied.
  struct PendingOp {
    Entry entry;
    uint16_t target_level = 0;
    bool is_delete = false;
    bool done = false;  // Deletes: applied in an earlier group this pass.
  };

  // A mutation a processed child hands to its parent. kMbr tightens the
  // child's slot, kRemove drops a dissolved child's slot, kAdd appends a
  // split sibling.
  struct ChildUpdate {
    enum class Kind : uint8_t { kMbr, kRemove, kAdd };
    Kind kind = Kind::kMbr;
    storage::PageId child = storage::kInvalidPageId;  // kMbr / kRemove.
    Entry add;                                        // kAdd.
    geom::Rect mbr;                                   // kMbr.
  };

  // A frontier item is (page, op) packed as page << 32 | op index, so the
  // per-level sort by (page, submission order) is a sort of plain
  // uint64_t — same scheme as BatchExecutor.
  static constexpr uint64_t PackItem(storage::PageId page, uint32_t op) {
    return (static_cast<uint64_t>(page) << 32) | op;
  }
  static constexpr storage::PageId ItemPage(uint64_t item) {
    return static_cast<storage::PageId>(item >> 32);
  }
  static constexpr uint32_t ItemOp(uint64_t item) {
    return static_cast<uint32_t>(item);
  }

  // One locate/apply round over `pending_`: descends to each op's target
  // level, applies the grouped operations, propagates child updates to the
  // root, and leaves condensation orphans in `orphans_` for the next pass.
  Status RunPass(UpdateBatchStats* stats);

  // Descent rounds: sorts and walks `frontier_` one level at a time,
  // pinning each distinct page once (windowed FetchBatch with per-page
  // degrade, as in BatchExecutor::ScanWindow). Items whose next hop is
  // their target level land in `arrived_`.
  Status Locate(UpdateBatchStats* stats);

  // Routes the items of one pinned frontier page one level down.
  Status RouteItems(const storage::PageGuard& guard, size_t begin,
                    size_t end);

  // Applies target-level groups and child updates to the node at `page`
  // under one mutable pin, then resolves overflow/underflow and queues the
  // parent's update. `ops` is the [begin, end) slice of arrived_ for this
  // page (possibly empty when only child updates are pending).
  Status ProcessNode(storage::PageId page, const uint64_t* ops, size_t nops,
                     UpdateBatchStats* stats);

  // Splits `entries` (> max_entries of them) into >= 2 groups, each within
  // [min_entries, max_entries], by applying the configured split
  // recursively to overfull groups.
  void MultiSplit(std::vector<Entry> entries,
                  std::vector<std::vector<Entry>>* groups) const;

  // Replaces an overflowing root: splits `node`'s entries, keeps the first
  // group in the root page (still pinned through `root_guard`), and grows
  // the tree (repeatedly if a grown root overflows again).
  Status GrowRoot(storage::PageGuard* root_guard, Node node,
                  UpdateBatchStats* stats);

  // Rebuilds a root whose children were all dissolved in one pass: the
  // highest-level orphans become the new root's entries (an empty leaf
  // root when no orphans remain).
  Status RecoverEmptyRoot(storage::PageGuard* root_guard,
                          UpdateBatchStats* stats);

  RTree* tree_;
  std::vector<PendingOp> pending_;
  std::vector<PendingOp> orphans_;
  std::vector<uint64_t> frontier_;
  std::vector<uint64_t> next_;
  std::vector<uint64_t> arrived_;
  std::vector<storage::PageId> window_ids_;
  std::vector<storage::PageId> level_pages_;
  // Locate-time tree structure, valid for one pass: who routed to a page,
  // and at which level it lives.
  std::unordered_map<storage::PageId, storage::PageId> parent_of_;
  std::unordered_map<storage::PageId, uint16_t> level_of_;
  std::unordered_map<storage::PageId, std::vector<ChildUpdate>>
      child_updates_;
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_UPDATE_BATCH_H_
