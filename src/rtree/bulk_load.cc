#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "geom/hilbert.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "util/macros.h"

namespace rtb::rtree {
namespace {

using storage::PageId;

// Sorts entries by the x-coordinate of the rectangle center (NX). The paper
// notes Roussopoulos-Leifker give no details and assumes the center is used.
void OrderNearestX(std::vector<Entry>* entries) {
  std::stable_sort(entries->begin(), entries->end(),
                   [](const Entry& a, const Entry& b) {
                     return a.rect.Center().x < b.rect.Center().x;
                   });
}

// Sorts entries by the Hilbert value of the rectangle center (HS).
void OrderHilbert(std::vector<Entry>* entries) {
  geom::HilbertCurve2D curve(16);
  struct Keyed {
    uint64_t key;
    uint32_t index;
  };
  std::vector<Keyed> keys(entries->size());
  for (size_t i = 0; i < entries->size(); ++i) {
    keys[i] = Keyed{curve.PointToIndex((*entries)[i].rect.Center()),
                    static_cast<uint32_t>(i)};
  }
  std::stable_sort(keys.begin(), keys.end(),
                   [](const Keyed& a, const Keyed& b) {
                     return a.key < b.key;
                   });
  std::vector<Entry> reordered(entries->size());
  for (size_t i = 0; i < keys.size(); ++i) {
    reordered[i] = (*entries)[keys[i].index];
  }
  *entries = std::move(reordered);
}

// Sort-Tile-Recursive ordering: sort by center x, cut into ceil(sqrt(P))
// vertical slabs of S*n entries, sort each slab by center y.
void OrderStr(std::vector<Entry>* entries, uint32_t n) {
  const size_t r = entries->size();
  if (r == 0) return;
  const size_t p = (r + n - 1) / n;  // Number of leaf pages.
  const size_t s = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(p))));
  const size_t slab = s * n;  // Entries per vertical slab.
  std::stable_sort(entries->begin(), entries->end(),
                   [](const Entry& a, const Entry& b) {
                     return a.rect.Center().x < b.rect.Center().x;
                   });
  for (size_t begin = 0; begin < r; begin += slab) {
    size_t end = std::min(begin + slab, r);
    std::stable_sort(entries->begin() + static_cast<ptrdiff_t>(begin),
                     entries->begin() + static_cast<ptrdiff_t>(end),
                     [](const Entry& a, const Entry& b) {
                       return a.rect.Center().y < b.rect.Center().y;
                     });
  }
}

Status ApplyOrdering(std::vector<Entry>* entries, LoadAlgorithm algo,
                     uint32_t n) {
  switch (algo) {
    case LoadAlgorithm::kNearestX:
      OrderNearestX(entries);
      return Status::OK();
    case LoadAlgorithm::kHilbertSort:
      OrderHilbert(entries);
      return Status::OK();
    case LoadAlgorithm::kStr:
      OrderStr(entries, n);
      return Status::OK();
    case LoadAlgorithm::kTupleAtATime:
      return Status::InvalidArgument(
          "TAT is not a packing algorithm; use BuildRTree");
  }
  return Status::InvalidArgument("unknown load algorithm");
}

// Writes one node and returns the parent entry describing it.
Result<Entry> WritePackedNode(storage::PageStore* store, uint16_t level,
                              std::vector<Entry> entries,
                              std::vector<uint8_t>* scratch) {
  Node node{level, std::move(entries)};
  RTB_ASSIGN_OR_RETURN(PageId page, store->Allocate());
  RTB_RETURN_IF_ERROR(
      SerializeNode(node, store->page_size(), scratch->data()));
  RTB_RETURN_IF_ERROR(store->Write(page, scratch->data()));
  return Entry{node.Mbr(), page};
}

}  // namespace

std::string_view LoadAlgorithmName(LoadAlgorithm algo) {
  switch (algo) {
    case LoadAlgorithm::kTupleAtATime:
      return "TAT";
    case LoadAlgorithm::kNearestX:
      return "NX";
    case LoadAlgorithm::kHilbertSort:
      return "HS";
    case LoadAlgorithm::kStr:
      return "STR";
  }
  return "?";
}

Result<BuiltTree> BulkLoad(storage::PageStore* store,
                           const RTreeConfig& config,
                           std::vector<Entry> leaf_entries,
                           LoadAlgorithm algo) {
  if (algo == LoadAlgorithm::kTupleAtATime) {
    return Status::InvalidArgument(
        "TAT is not a packing algorithm; use BuildRTree");
  }
  if (!config.IsValid()) {
    return Status::InvalidArgument("invalid RTreeConfig");
  }
  if (config.max_entries > NodeCapacity(store->page_size())) {
    return Status::InvalidArgument("fanout exceeds page capacity");
  }
  const uint32_t n = config.max_entries;
  std::vector<uint8_t> scratch(store->page_size());
  BuiltTree result;

  std::vector<Entry> level_entries = std::move(leaf_entries);
  uint16_t level = 0;
  for (;;) {
    if (level_entries.size() <= n) {
      // Fits in a single node: this is the root.
      RTB_ASSIGN_OR_RETURN(
          Entry root_entry,
          WritePackedNode(store, level, std::move(level_entries), &scratch));
      ++result.num_nodes;
      result.root = static_cast<PageId>(root_entry.id);
      result.height = static_cast<uint16_t>(level + 1);
      return result;
    }
    RTB_RETURN_IF_ERROR(ApplyOrdering(&level_entries, algo, n));
    std::vector<Entry> parent_entries;
    parent_entries.reserve((level_entries.size() + n - 1) / n);
    for (size_t begin = 0; begin < level_entries.size(); begin += n) {
      size_t end = std::min(begin + n, level_entries.size());
      std::vector<Entry> group(
          level_entries.begin() + static_cast<ptrdiff_t>(begin),
          level_entries.begin() + static_cast<ptrdiff_t>(end));
      RTB_ASSIGN_OR_RETURN(
          Entry parent_entry,
          WritePackedNode(store, level, std::move(group), &scratch));
      ++result.num_nodes;
      parent_entries.push_back(parent_entry);
    }
    level_entries = std::move(parent_entries);
    ++level;
  }
}

Result<BuiltTree> BuildRTree(storage::PageStore* store,
                             const RTreeConfig& config,
                             const std::vector<geom::Rect>& rects,
                             LoadAlgorithm algo, size_t tat_pool_pages) {
  if (algo != LoadAlgorithm::kTupleAtATime) {
    std::vector<Entry> entries;
    entries.reserve(rects.size());
    for (size_t i = 0; i < rects.size(); ++i) {
      entries.push_back(Entry{rects[i], static_cast<ObjectId>(i)});
    }
    return BulkLoad(store, config, std::move(entries), algo);
  }

  // TAT: insert through a scratch pool, then flush so the store holds the
  // finished tree.
  const PageId pages_before = store->num_pages();
  auto pool = storage::BufferPool::MakeLru(store, tat_pool_pages);
  RTB_ASSIGN_OR_RETURN(RTree tree, RTree::Create(pool.get(), config));
  for (size_t i = 0; i < rects.size(); ++i) {
    RTB_RETURN_IF_ERROR(tree.Insert(rects[i], static_cast<ObjectId>(i)));
  }
  RTB_RETURN_IF_ERROR(pool->FlushAll());
  BuiltTree result;
  result.root = tree.root();
  result.height = tree.height();
  // Every page a pure insert workload allocates stays reachable, so the
  // allocation delta equals the node count.
  result.num_nodes = store->num_pages() - pages_before;
  return result;
}

}  // namespace rtb::rtree
