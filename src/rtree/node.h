// In-memory R-tree node representation and its on-page binary layout.
//
// One node occupies exactly one page (paper Section 2.1). The layout is:
//
//   offset  size  field
//   0       4     magic (0x52545250, "RTRP")
//   4       2     level (0 = leaf, increasing toward the root)
//   6       2     count (number of entries)
//   8       8     reserved (zero)
//   16      40*i  entries: {lo.x, lo.y, hi.x, hi.y : f64} + {id : u64}
//
// At the leaf level an entry's id is the application object id; at internal
// levels it is the PageId of the child node and the rect is the child's MBR.

#ifndef RTB_RTREE_NODE_H_
#define RTB_RTREE_NODE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "geom/rect.h"
#include "storage/page.h"
#include "util/macros.h"
#include "util/result.h"

namespace rtb::rtree {

/// Application-level object identifier stored in leaf entries.
using ObjectId = uint64_t;

/// One slot of a node: a rectangle plus a child pointer / object id.
struct Entry {
  geom::Rect rect;
  uint64_t id = 0;
};

inline bool operator==(const Entry& a, const Entry& b) {
  return a.rect == b.rect && a.id == b.id;
}

/// A decoded node. `level` is the height above the leaves (leaf = 0).
struct Node {
  uint16_t level = 0;
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }

  /// MBR of all entries; Rect::Empty() for an empty node.
  geom::Rect Mbr() const {
    geom::Rect mbr = geom::Rect::Empty();
    for (const Entry& e : entries) mbr = geom::Union(mbr, e.rect);
    return mbr;
  }
};

/// Size in bytes of the fixed node header.
inline constexpr size_t kNodeHeaderSize = 16;

/// Size in bytes of one serialized entry.
inline constexpr size_t kEntrySize = 5 * 8;

/// Maximum entries a node can hold in a page of `page_size` bytes.
inline constexpr uint32_t NodeCapacity(size_t page_size) {
  return page_size < kNodeHeaderSize
             ? 0
             : static_cast<uint32_t>((page_size - kNodeHeaderSize) /
                                     kEntrySize);
}

/// Serializes `node` into `out` (page_size bytes, zero-padded). Fails when
/// the entries do not fit.
Status SerializeNode(const Node& node, size_t page_size, uint8_t* out);

/// Decodes a node from a page image into an owning Node (heap-allocated
/// entry vector). This is the mutation-path decoder: inserts, deletes and
/// splits materialize a Node, edit its entries, and re-serialize. Read
/// paths use NodeView instead.
Result<Node> DeserializeNode(const uint8_t* data, size_t page_size);

/// Zero-copy reader over a serialized node image.
///
/// Create() validates the header once (magic, entry count vs. page
/// capacity); the accessors then index straight into the page bytes with no
/// decoding pass, no entry vector, and no heap allocation. This is the
/// read-path representation: a query visits a node by wrapping the pinned
/// frame's bytes in a NodeView and scanning slots in place.
///
/// A NodeView borrows the page image — it is valid only while the bytes it
/// was created over stay alive and unmodified, i.e. no longer than the
/// PageGuard (or caller-owned scratch buffer) it came from. It is a
/// two-word value type; pass it by value.
class NodeView {
 public:
  NodeView() = default;

  /// Wraps `data` (a page image of `page_size` bytes). Returns
  /// Status::Corruption for a bad magic, a truncated page, or an entry
  /// count that would overflow the page.
  static Result<NodeView> Create(const uint8_t* data, size_t page_size);

  uint16_t level() const { return level_; }
  bool is_leaf() const { return level_ == 0; }
  uint16_t count() const { return count_; }

  /// Rectangle of slot `i` (copied out of the page; 4 doubles, no heap).
  geom::Rect rect(size_t i) const {
    RTB_DCHECK(i < count_);
    geom::Rect r;
    std::memcpy(&r, entries_ + i * kEntrySize, 4 * sizeof(double));
    return r;
  }

  /// Child page id (internal levels) or object id (leaves) of slot `i`.
  uint64_t id(size_t i) const {
    RTB_DCHECK(i < count_);
    uint64_t v;
    std::memcpy(&v, entries_ + i * kEntrySize + 4 * sizeof(double),
                sizeof(v));
    return v;
  }

  /// Slot `i` as an Entry value.
  Entry entry(size_t i) const { return Entry{rect(i), id(i)}; }

  /// First entry's raw bytes (count() * kEntrySize readable). For bulk
  /// readers (the scan-kernel gather) that stride the page themselves.
  const uint8_t* raw_entries() const { return entries_; }

  /// Equivalent to rect(i).Intersects(q) for a non-empty `q`, but reads
  /// coordinates straight off the page with per-axis early exit: the common
  /// miss costs one or two loads instead of a 4-double copy plus a full
  /// Rect comparison.
  bool Intersects(size_t i, const geom::Rect& q) const {
    RTB_DCHECK(i < count_);
    const uint8_t* p = entries_ + i * kEntrySize;
    double lox, loy, hix, hiy;
    std::memcpy(&lox, p, sizeof(double));
    if (lox > q.hi.x) return false;
    std::memcpy(&hix, p + 2 * sizeof(double), sizeof(double));
    if (hix < q.lo.x || hix < lox) return false;  // Disjoint or empty.
    std::memcpy(&loy, p + sizeof(double), sizeof(double));
    if (loy > q.hi.y) return false;
    std::memcpy(&hiy, p + 3 * sizeof(double), sizeof(double));
    return hiy >= q.lo.y && hiy >= loy;
  }

  /// MBR of all slots; Rect::Empty() for an empty node.
  geom::Rect Mbr() const {
    geom::Rect mbr = geom::Rect::Empty();
    for (size_t i = 0; i < count_; ++i) mbr = geom::Union(mbr, rect(i));
    return mbr;
  }

 private:
  NodeView(const uint8_t* entries, uint16_t level, uint16_t count)
      : entries_(entries), level_(level), count_(count) {}

  const uint8_t* entries_ = nullptr;  // First entry (page + header).
  uint16_t level_ = 0;
  uint16_t count_ = 0;
};

}  // namespace rtb::rtree

#endif  // RTB_RTREE_NODE_H_
