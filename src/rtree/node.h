// In-memory R-tree node representation and its on-page binary layout.
//
// One node occupies exactly one page (paper Section 2.1). The layout is:
//
//   offset  size  field
//   0       4     magic (0x52545250, "RTRP")
//   4       2     level (0 = leaf, increasing toward the root)
//   6       2     count (number of entries)
//   8       8     reserved (zero)
//   16      40*i  entries: {lo.x, lo.y, hi.x, hi.y : f64} + {id : u64}
//
// At the leaf level an entry's id is the application object id; at internal
// levels it is the PageId of the child node and the rect is the child's MBR.

#ifndef RTB_RTREE_NODE_H_
#define RTB_RTREE_NODE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "storage/page.h"
#include "util/result.h"

namespace rtb::rtree {

/// Application-level object identifier stored in leaf entries.
using ObjectId = uint64_t;

/// One slot of a node: a rectangle plus a child pointer / object id.
struct Entry {
  geom::Rect rect;
  uint64_t id = 0;
};

inline bool operator==(const Entry& a, const Entry& b) {
  return a.rect == b.rect && a.id == b.id;
}

/// A decoded node. `level` is the height above the leaves (leaf = 0).
struct Node {
  uint16_t level = 0;
  std::vector<Entry> entries;

  bool is_leaf() const { return level == 0; }

  /// MBR of all entries; Rect::Empty() for an empty node.
  geom::Rect Mbr() const {
    geom::Rect mbr = geom::Rect::Empty();
    for (const Entry& e : entries) mbr = geom::Union(mbr, e.rect);
    return mbr;
  }
};

/// Size in bytes of the fixed node header.
inline constexpr size_t kNodeHeaderSize = 16;

/// Size in bytes of one serialized entry.
inline constexpr size_t kEntrySize = 5 * 8;

/// Maximum entries a node can hold in a page of `page_size` bytes.
inline constexpr uint32_t NodeCapacity(size_t page_size) {
  return page_size < kNodeHeaderSize
             ? 0
             : static_cast<uint32_t>((page_size - kNodeHeaderSize) /
                                     kEntrySize);
}

/// Serializes `node` into `out` (page_size bytes, zero-padded). Fails when
/// the entries do not fit.
Status SerializeNode(const Node& node, size_t page_size, uint8_t* out);

/// Decodes a node from a page image.
Result<Node> DeserializeNode(const uint8_t* data, size_t page_size);

}  // namespace rtb::rtree

#endif  // RTB_RTREE_NODE_H_
