// R-tree loading algorithms (paper Section 2.2).
//
// The packing loaders follow the paper's "General Algorithm": order the
// rectangles, place each consecutive run of n into a leaf, emit (MBR, page)
// tuples, and recurse until a single root remains. They differ only in the
// ordering:
//
//   NX  (Roussopoulos-Leifker 1985): sort by the x-coordinate of the center.
//   HS  (Kamel-Faloutsos 1993): sort by Hilbert value of the center.
//   STR (Leutenegger-Lopez-Edgington 1997, paper ref [7]): sort by x, cut
//       into ceil(sqrt(P)) vertical slabs, sort each slab by y. Included as
//       an extension; the paper cites it but evaluates NX/HS/TAT.
//
// TAT (tuple-at-a-time with Guttman quadratic split) is not a packing
// algorithm; BuildRTree covers it by inserting through a scratch pool.

#ifndef RTB_RTREE_BULK_LOAD_H_
#define RTB_RTREE_BULK_LOAD_H_

#include <string_view>
#include <vector>

#include "geom/rect.h"
#include "rtree/config.h"
#include "rtree/node.h"
#include "storage/page_store.h"
#include "util/result.h"

namespace rtb::rtree {

/// How a tree is constructed.
enum class LoadAlgorithm {
  kTupleAtATime,  // "TAT"
  kNearestX,      // "NX"
  kHilbertSort,   // "HS"
  kStr,           // "STR"
};

/// Short display name ("TAT", "NX", "HS", "STR").
std::string_view LoadAlgorithmName(LoadAlgorithm algo);

/// Location of a finished tree inside a PageStore.
struct BuiltTree {
  storage::PageId root = storage::kInvalidPageId;
  uint16_t height = 0;
  uint32_t num_nodes = 0;
};

/// Packs `leaf_entries` into a tree using a packing ordering (kNearestX,
/// kHilbertSort or kStr; kTupleAtATime is rejected — use BuildRTree).
/// Writes pages directly to `store`; build I/O is not part of any query
/// metric, so callers typically reset counters afterwards.
Result<BuiltTree> BulkLoad(storage::PageStore* store,
                           const RTreeConfig& config,
                           std::vector<Entry> leaf_entries,
                           LoadAlgorithm algo);

/// Builds a tree from `rects` (object ids are assigned 0..N-1 in input
/// order) with any algorithm, including TAT. TAT inserts in input order
/// through a scratch buffer pool of `tat_pool_pages` frames.
Result<BuiltTree> BuildRTree(storage::PageStore* store,
                             const RTreeConfig& config,
                             const std::vector<geom::Rect>& rects,
                             LoadAlgorithm algo,
                             size_t tat_pool_pages = 64);

}  // namespace rtb::rtree

#endif  // RTB_RTREE_BULK_LOAD_H_
