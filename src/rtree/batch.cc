#include "rtree/batch.h"

#include <algorithm>
#include <utility>

#include "storage/async_io.h"
#include "util/macros.h"

namespace rtb::rtree {

namespace {

// Upper bound on pages pinned simultaneously by the windowed multi-get.
// Small on purpose: a wide window on a small pool would make frames
// unevictable that the scan itself still needs. The window's payoff is
// downstream: the serial pool routes the window's miss set through
// PageStore::ReadBatch, so a cold sweep over this page-ordered frontier
// reaches a FilePageStore as one vectored read per consecutive run instead
// of one syscall per page (the sharded pool additionally amortizes its
// shard locks over the window).
constexpr size_t kMaxFetchWindow = 8;

}  // namespace

BatchExecutor::BatchExecutor(const RTree* tree) : tree_(tree) {
  RTB_CHECK(tree_ != nullptr);
  match_idx_.resize(NodeCapacity(tree_->pool()->page_size()));
}

Status BatchExecutor::VisitPage(const storage::PageGuard& guard, size_t begin,
                                size_t end,
                                std::span<const geom::Rect> queries,
                                std::vector<std::vector<ObjectId>>* results) {
  RTB_ASSIGN_OR_RETURN(
      NodeView view,
      NodeView::Create(guard.data(), tree_->pool()->page_size()));
  scratch_.Load(view);
  const bool leaf = scratch_.is_leaf();
  for (size_t k = begin; k < end; ++k) {
    const uint32_t q = ItemQuery(frontier_[k]);
    const size_t nmatch =
        ScanIntersecting(scratch_, queries[q], match_idx_.data());
    if (leaf) {
      std::vector<ObjectId>& out = (*results)[q];
      for (size_t m = 0; m < nmatch; ++m) {
        out.push_back(scratch_.id(match_idx_[m]));
      }
    } else {
      for (size_t m = 0; m < nmatch; ++m) {
        next_.push_back(PackItem(
            static_cast<storage::PageId>(scratch_.id(match_idx_[m])), q));
      }
    }
  }
  return Status::OK();
}

Status BatchExecutor::ScanWindow(storage::PageCache* pool, size_t p, size_t w,
                                 std::span<const geom::Rect> queries,
                                 std::vector<std::vector<ObjectId>>* results) {
  bool done = false;
  if (w > 1) {
    window_ids_.clear();
    for (size_t j = 0; j < w; ++j) {
      window_ids_.push_back(runs_[p + j].page);
    }
    Result<std::vector<storage::PageGuard>> guards =
        pool->FetchBatch(window_ids_.data(), w);
    if (guards.ok()) {
      for (size_t j = 0; j < w; ++j) {
        RTB_RETURN_IF_ERROR(VisitPage((*guards)[j], runs_[p + j].begin,
                                      runs_[p + j].end, queries, results));
        (*guards)[j].Release();
      }
      done = true;
    }
    // A failed multi-get (e.g. not enough unpinned frames for the window)
    // falls through to the one-page-at-a-time path, which needs only a
    // single free frame — same degradation as the serial search.
  }
  if (!done) {
    for (size_t j = 0; j < w; ++j) {
      RTB_ASSIGN_OR_RETURN(storage::PageGuard guard,
                           pool->Fetch(runs_[p + j].page));
      RTB_RETURN_IF_ERROR(VisitPage(guard, runs_[p + j].begin,
                                    runs_[p + j].end, queries, results));
    }
  }
  return Status::OK();
}

Status BatchExecutor::RunLevelAsync(
    storage::PageCache* pool, size_t window,
    std::span<const geom::Rect> queries,
    std::vector<std::vector<ObjectId>>* results) {
  const size_t n = runs_.size();
  // Begins the multi-get for runs_[p, p+w); false routes the window to the
  // synchronous ScanWindow instead (w == 1, or the pool can't pin a second
  // window right now).
  auto begin_window = [&](size_t wp, size_t ww,
                          storage::PendingBatch* out) -> bool {
    if (ww <= 1) return false;
    window_ids_.clear();
    for (size_t j = 0; j < ww; ++j) {
      window_ids_.push_back(runs_[wp + j].page);
    }
    Result<storage::PendingBatch> batch =
        pool->BeginFetchBatch(window_ids_.data(), ww);
    if (!batch.ok()) return false;
    *out = std::move(*batch);
    return true;
  };

  size_t p = 0;
  storage::PendingBatch cur;
  bool cur_begun = false;
  size_t cur_p = 0;
  size_t cur_w = 0;
  if (p < n) {
    cur_p = p;
    cur_w = std::min(window, n - p);
    p += cur_w;
    cur_begun = begin_window(cur_p, cur_w, &cur);
  }
  while (cur_w > 0) {
    // Submit the next window's misses before scanning the current one: that
    // read proceeds on the engine while VisitPage runs below.
    storage::PendingBatch nxt;
    bool nxt_begun = false;
    size_t nxt_p = 0;
    size_t nxt_w = 0;
    if (p < n) {
      nxt_p = p;
      nxt_w = std::min(window, n - p);
      p += nxt_w;
      nxt_begun = begin_window(nxt_p, nxt_w, &nxt);
    }
    if (cur_begun) {
      Result<std::vector<storage::PageGuard>> guards =
          pool->FinishFetchBatch(std::move(cur));
      if (guards.ok()) {
        for (size_t j = 0; j < cur_w; ++j) {
          // An error here drops `nxt` through its destructor, which waits
          // out the in-flight read and releases its pins.
          RTB_RETURN_IF_ERROR(VisitPage((*guards)[j], runs_[cur_p + j].begin,
                                        runs_[cur_p + j].end, queries,
                                        results));
          (*guards)[j].Release();
        }
      } else {
        // Same degradation as the sync path: retry the window one page at a
        // time (the failed Finish released all its pins).
        RTB_RETURN_IF_ERROR(ScanWindow(pool, cur_p, cur_w, queries, results));
      }
    } else {
      RTB_RETURN_IF_ERROR(ScanWindow(pool, cur_p, cur_w, queries, results));
    }
    cur = std::move(nxt);
    cur_begun = nxt_begun;
    cur_p = nxt_p;
    cur_w = nxt_w;
  }
  return Status::OK();
}

Status BatchExecutor::Run(std::span<const geom::Rect> queries,
                          std::vector<std::vector<ObjectId>>* results,
                          BatchStats* stats) {
  RTB_CHECK(results != nullptr);
  results->resize(queries.size());
  frontier_.clear();
  for (uint32_t q = 0; q < queries.size(); ++q) {
    (*results)[q].clear();
    // Empty queries match nothing and, like the serial path, never touch
    // the tree.
    if (!queries[q].is_empty()) {
      frontier_.push_back(PackItem(tree_->root(), q));
    }
  }

  storage::PageCache* pool = tree_->pool();
  // Double buffering pins two windows at once, so each one takes a smaller
  // bite of the pool than the synchronous single window.
  const bool async = storage::AsyncIoActive();
  const size_t window =
      async ? std::min(kMaxFetchWindow,
                       std::max<size_t>(1, pool->capacity() / 8))
            : std::min(kMaxFetchWindow,
                       std::max<size_t>(1, pool->capacity() / 4));
  BatchStats local;
  const bool reverse = reverse_sweep_;
  reverse_sweep_ = !reverse_sweep_;

  // One round per tree level: every frontier item sits at the same depth,
  // and scanning an internal page only emits items one level down.
  while (!frontier_.empty()) {
    std::sort(frontier_.begin(), frontier_.end());
    next_.clear();

    runs_.clear();
    for (uint32_t i = 0; i < frontier_.size(); ++i) {
      const storage::PageId page = ItemPage(frontier_[i]);
      if (runs_.empty() || page != runs_.back().page) {
        runs_.push_back({page, i, i});
      }
      runs_.back().end = i + 1;
    }
    // Elevator sweep: every other batch walks the runs high-to-low, so the
    // sweep resumes on the pages the previous one ended with (the ones an
    // LRU pool still holds) instead of flooding from the low end.
    if (reverse) std::reverse(runs_.begin(), runs_.end());
    local.node_accesses += frontier_.size();
    local.page_visits += runs_.size();

    if (async) {
      RTB_RETURN_IF_ERROR(RunLevelAsync(pool, window, queries, results));
    } else {
      size_t p = 0;
      while (p < runs_.size()) {
        const size_t w = std::min(window, runs_.size() - p);
        RTB_RETURN_IF_ERROR(ScanWindow(pool, p, w, queries, results));
        p += w;
      }
    }
    std::swap(frontier_, next_);
  }

  if (stats != nullptr) {
    stats->node_accesses += local.node_accesses;
    stats->page_visits += local.page_visits;
  }
  return Status::OK();
}

}  // namespace rtb::rtree
