// Guttman node-splitting heuristics (SIGMOD 1984).
//
// The paper's TAT loader "inserts one tuple at a time into the R-tree using
// the quadratic split heuristic of Guttman" (Section 2.2). The linear
// heuristic is included for the split-policy ablation bench.

#ifndef RTB_RTREE_SPLIT_H_
#define RTB_RTREE_SPLIT_H_

#include <vector>

#include "rtree/config.h"
#include "rtree/node.h"

namespace rtb::rtree {

/// Outcome of splitting an overfull entry set into two groups.
struct SplitResult {
  std::vector<Entry> group_a;
  std::vector<Entry> group_b;
};

/// Guttman's quadratic split: seed with the pair wasting the most area, then
/// repeatedly assign the entry with the largest preference difference to the
/// group whose MBR it enlarges least (ties: smaller area, then fewer
/// entries). Honors `min_entries` by force-assigning remaining entries when
/// one group would otherwise starve.
///
/// Requires entries.size() >= 2 and entries.size() > config.max_entries is
/// the usual call context (an overflowing node), though any size works.
SplitResult QuadraticSplit(const std::vector<Entry>& entries,
                           const RTreeConfig& config);

/// Guttman's linear split: seeds are the pair with the greatest normalized
/// separation along any dimension; remaining entries are assigned by least
/// enlargement in input order.
SplitResult LinearSplit(const std::vector<Entry>& entries,
                        const RTreeConfig& config);

/// The R*-tree split (Beckmann et al. 1990): choose the split axis
/// minimizing the summed perimeters over all valid distributions of the
/// lo/hi-sorted entries, then the distribution along that axis minimizing
/// group overlap (ties: minimal total area). Both groups respect
/// min_entries by construction.
SplitResult RStarSplit(const std::vector<Entry>& entries,
                       const RTreeConfig& config);

/// Dispatches on config.split_policy.
SplitResult SplitEntries(const std::vector<Entry>& entries,
                         const RTreeConfig& config);

}  // namespace rtb::rtree

#endif  // RTB_RTREE_SPLIT_H_
