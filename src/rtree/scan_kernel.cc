#include "rtree/scan_kernel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(RTB_SIMD_ENABLED) && defined(__x86_64__)
#define RTB_SCAN_HAVE_X86 1
#include <immintrin.h>
#else
#define RTB_SCAN_HAVE_X86 0
#endif

#if defined(RTB_SIMD_ENABLED) && defined(__aarch64__)
#define RTB_SCAN_HAVE_NEON 1
#include <arm_neon.h>
#else
#define RTB_SCAN_HAVE_NEON 0
#endif

namespace rtb::rtree {

namespace {

// Scalar test of one slot; also the tail loop of the vector sweeps. The
// validity bit folds in the entry-non-empty term so every sweep agrees with
// NodeView::Intersects (see header).
inline bool TestSlot(const ScanScratch& s, const geom::Rect& q, size_t i) {
  if (((s.valid()[i >> 6] >> (i & 63)) & 1) == 0) return false;
  return s.xlo()[i] <= q.hi.x && s.xhi()[i] >= q.lo.x &&
         s.ylo()[i] <= q.hi.y && s.yhi()[i] >= q.lo.y;
}

size_t SweepScalar(const ScanScratch& s, const geom::Rect& q, uint32_t* out) {
  const size_t count = s.count();
  size_t n = 0;
  for (size_t i = 0; i < count; ++i) {
    if (TestSlot(s, q, i)) out[n++] = static_cast<uint32_t>(i);
  }
  return n;
}

#if RTB_SCAN_HAVE_X86

// Two entries per step. The step is 2 and validity words hold 64 bits, so a
// step's 2-bit window never straddles a word.
size_t SweepSse2(const ScanScratch& s, const geom::Rect& q, uint32_t* out) {
  const size_t count = s.count();
  const __m128d qhx = _mm_set1_pd(q.hi.x), qlx = _mm_set1_pd(q.lo.x);
  const __m128d qhy = _mm_set1_pd(q.hi.y), qly = _mm_set1_pd(q.lo.y);
  size_t n = 0;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const unsigned vbits =
        static_cast<unsigned>((s.valid()[i >> 6] >> (i & 63)) & 0x3u);
    if (vbits == 0) continue;
    __m128d m = _mm_and_pd(_mm_cmple_pd(_mm_loadu_pd(s.xlo() + i), qhx),
                           _mm_cmpge_pd(_mm_loadu_pd(s.xhi() + i), qlx));
    m = _mm_and_pd(m, _mm_cmple_pd(_mm_loadu_pd(s.ylo() + i), qhy));
    m = _mm_and_pd(m, _mm_cmpge_pd(_mm_loadu_pd(s.yhi() + i), qly));
    unsigned mask = static_cast<unsigned>(_mm_movemask_pd(m)) & vbits;
    while (mask != 0) {
      out[n++] = static_cast<uint32_t>(i + __builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
  for (; i < count; ++i) {
    if (TestSlot(s, q, i)) out[n++] = static_cast<uint32_t>(i);
  }
  return n;
}

// Four entries per step (step 4 divides 64: no word straddle either).
// _CMP_*_OQ compares are quiet and NaN-false, matching the scalar sweep.
__attribute__((target("avx2"))) size_t SweepAvx2(const ScanScratch& s,
                                                 const geom::Rect& q,
                                                 uint32_t* out) {
  const size_t count = s.count();
  const __m256d qhx = _mm256_set1_pd(q.hi.x), qlx = _mm256_set1_pd(q.lo.x);
  const __m256d qhy = _mm256_set1_pd(q.hi.y), qly = _mm256_set1_pd(q.lo.y);
  size_t n = 0;
  size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const unsigned vbits =
        static_cast<unsigned>((s.valid()[i >> 6] >> (i & 63)) & 0xFu);
    if (vbits == 0) continue;
    __m256d m = _mm256_and_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(s.xlo() + i), qhx, _CMP_LE_OQ),
        _mm256_cmp_pd(_mm256_loadu_pd(s.xhi() + i), qlx, _CMP_GE_OQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(_mm256_loadu_pd(s.ylo() + i), qhy, _CMP_LE_OQ));
    m = _mm256_and_pd(
        m, _mm256_cmp_pd(_mm256_loadu_pd(s.yhi() + i), qly, _CMP_GE_OQ));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(m)) & vbits;
    while (mask != 0) {
      out[n++] = static_cast<uint32_t>(i + __builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
  for (; i < count; ++i) {
    if (TestSlot(s, q, i)) out[n++] = static_cast<uint32_t>(i);
  }
  return n;
}

// Gathers 4 entries per step: each entry's rect is 4 contiguous doubles at
// a 40-byte stride, so four unaligned row loads plus a 4x4 transpose yield
// the xlo/ylo/xhi/yhi columns directly. Validity (hi >= lo per axis, quiet
// NaN-false like the scalar test) is computed on the transposed columns.
// Returns the number of slots handled (a multiple of 4 <= n); the caller
// finishes the tail with the scalar loop.
__attribute__((target("avx2"))) size_t GatherAvx2(
    const uint8_t* entries, size_t n, double* xlo, double* ylo, double* xhi,
    double* yhi, uint64_t* ids, uint64_t* valid) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const uint8_t* p = entries + i * kEntrySize;
    const __m256d e0 = _mm256_loadu_pd(reinterpret_cast<const double*>(p));
    const __m256d e1 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(p + kEntrySize));
    const __m256d e2 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(p + 2 * kEntrySize));
    const __m256d e3 =
        _mm256_loadu_pd(reinterpret_cast<const double*>(p + 3 * kEntrySize));
    const __m256d t0 = _mm256_unpacklo_pd(e0, e1);  // xlo0 xlo1 xhi0 xhi1
    const __m256d t1 = _mm256_unpackhi_pd(e0, e1);  // ylo0 ylo1 yhi0 yhi1
    const __m256d t2 = _mm256_unpacklo_pd(e2, e3);
    const __m256d t3 = _mm256_unpackhi_pd(e2, e3);
    const __m256d cxlo = _mm256_permute2f128_pd(t0, t2, 0x20);
    const __m256d cxhi = _mm256_permute2f128_pd(t0, t2, 0x31);
    const __m256d cylo = _mm256_permute2f128_pd(t1, t3, 0x20);
    const __m256d cyhi = _mm256_permute2f128_pd(t1, t3, 0x31);
    _mm256_storeu_pd(xlo + i, cxlo);
    _mm256_storeu_pd(xhi + i, cxhi);
    _mm256_storeu_pd(ylo + i, cylo);
    _mm256_storeu_pd(yhi + i, cyhi);
    for (size_t j = 0; j < 4; ++j) {
      std::memcpy(ids + i + j,
                  p + j * kEntrySize + 4 * sizeof(double), sizeof(uint64_t));
    }
    const __m256d ok =
        _mm256_and_pd(_mm256_cmp_pd(cxhi, cxlo, _CMP_GE_OQ),
                      _mm256_cmp_pd(cyhi, cylo, _CMP_GE_OQ));
    const uint64_t bits = static_cast<unsigned>(_mm256_movemask_pd(ok));
    valid[i >> 6] |= bits << (i & 63);  // Step 4: never straddles a word.
  }
  return i;
}

#endif  // RTB_SCAN_HAVE_X86

#if RTB_SCAN_HAVE_NEON

// Two entries per step, mirroring SweepSse2. vcle/vcge are IEEE quiet
// compares (NaN-false), matching the scalar sweep.
size_t SweepNeon(const ScanScratch& s, const geom::Rect& q, uint32_t* out) {
  const size_t count = s.count();
  const float64x2_t qhx = vdupq_n_f64(q.hi.x), qlx = vdupq_n_f64(q.lo.x);
  const float64x2_t qhy = vdupq_n_f64(q.hi.y), qly = vdupq_n_f64(q.lo.y);
  size_t n = 0;
  size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const unsigned vbits =
        static_cast<unsigned>((s.valid()[i >> 6] >> (i & 63)) & 0x3u);
    if (vbits == 0) continue;
    uint64x2_t m = vandq_u64(vcleq_f64(vld1q_f64(s.xlo() + i), qhx),
                             vcgeq_f64(vld1q_f64(s.xhi() + i), qlx));
    m = vandq_u64(m, vcleq_f64(vld1q_f64(s.ylo() + i), qhy));
    m = vandq_u64(m, vcgeq_f64(vld1q_f64(s.yhi() + i), qly));
    const unsigned mask0 =
        (static_cast<unsigned>(vgetq_lane_u64(m, 0) & 1) |
         static_cast<unsigned>((vgetq_lane_u64(m, 1) & 1) << 1));
    unsigned mask = mask0 & vbits;
    while (mask != 0) {
      out[n++] = static_cast<uint32_t>(i + __builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
  for (; i < count; ++i) {
    if (TestSlot(s, q, i)) out[n++] = static_cast<uint32_t>(i);
  }
  return n;
}

#endif  // RTB_SCAN_HAVE_NEON

ScanKernel DetectBestKernel() {
#if RTB_SCAN_HAVE_X86
  if (__builtin_cpu_supports("avx2")) return ScanKernel::kAvx2;
  return ScanKernel::kSse2;  // SSE2 is the x86-64 baseline.
#elif RTB_SCAN_HAVE_NEON
  return ScanKernel::kNeon;  // NEON is the aarch64 baseline.
#else
  return ScanKernel::kScalar;
#endif
}

// Whether this binary + CPU can run `k`. Cross-architecture requests (neon
// on x86, sse2/avx2 on aarch64) are unavailable, not merely capped.
bool KernelAvailable(ScanKernel k) {
  switch (k) {
    case ScanKernel::kScalar:
      return true;
    case ScanKernel::kSse2:
    case ScanKernel::kAvx2:
#if RTB_SCAN_HAVE_X86
      return static_cast<int>(k) <= static_cast<int>(DetectBestKernel());
#else
      return false;
#endif
    case ScanKernel::kNeon:
      return RTB_SCAN_HAVE_NEON != 0;
  }
  return false;
}

ScanKernel CapToBest(ScanKernel requested) {
  return KernelAvailable(requested) ? requested : DetectBestKernel();
}

ScanKernel InitialKernel() {
  if (const char* env = std::getenv("RTB_SCAN_KERNEL")) {
    if (std::strcmp(env, "scalar") == 0) return ScanKernel::kScalar;
    if (std::strcmp(env, "sse2") == 0) return CapToBest(ScanKernel::kSse2);
    if (std::strcmp(env, "avx2") == 0) return CapToBest(ScanKernel::kAvx2);
    if (std::strcmp(env, "neon") == 0) return CapToBest(ScanKernel::kNeon);
  }
  return DetectBestKernel();
}

std::atomic<ScanKernel>& ActiveKernelSlot() {
  static std::atomic<ScanKernel> slot{InitialKernel()};
  return slot;
}

}  // namespace

const char* ScanKernelName(ScanKernel k) {
  switch (k) {
    case ScanKernel::kScalar:
      return "scalar";
    case ScanKernel::kSse2:
      return "sse2";
    case ScanKernel::kAvx2:
      return "avx2";
    case ScanKernel::kNeon:
      return "neon";
  }
  return "unknown";
}

ScanKernel BestScanKernel() { return DetectBestKernel(); }

ScanKernel ActiveScanKernel() {
  return ActiveKernelSlot().load(std::memory_order_relaxed);
}

bool SetScanKernel(ScanKernel k) {
  if (!KernelAvailable(k)) return false;
  ActiveKernelSlot().store(k, std::memory_order_relaxed);
  return true;
}

void ScanScratch::Load(NodeView view) {
  count_ = view.count();
  level_ = view.level();
  const size_t n = count_;
  if (xlo_.size() < n) {
    xlo_.resize(n);
    ylo_.resize(n);
    xhi_.resize(n);
    yhi_.resize(n);
    ids_.resize(n);
  }
  const size_t words = (n + 63) / 64;
  if (valid_.size() < words) valid_.resize(words);
  std::fill(valid_.begin(), valid_.begin() + words, 0);
  size_t i = 0;
#if RTB_SCAN_HAVE_X86
  // The gather rides the sweep dispatch: forcing the scalar sweep (tests,
  // the bench's batched-scalar row) also forces the scalar gather, so each
  // kernel setting measures one coherent path.
  if (ActiveScanKernel() == ScanKernel::kAvx2) {
    i = GatherAvx2(view.raw_entries(), n, xlo_.data(), ylo_.data(),
                   xhi_.data(), yhi_.data(), ids_.data(), valid_.data());
  }
#endif
  for (; i < n; ++i) {
    const geom::Rect r = view.rect(i);
    xlo_[i] = r.lo.x;
    ylo_[i] = r.lo.y;
    xhi_[i] = r.hi.x;
    yhi_[i] = r.hi.y;
    ids_[i] = view.id(i);
    if (r.hi.x >= r.lo.x && r.hi.y >= r.lo.y) {
      valid_[i >> 6] |= uint64_t{1} << (i & 63);
    }
  }
}

size_t ScanIntersecting(const ScanScratch& scratch, const geom::Rect& q,
                        uint32_t* out) {
  switch (ActiveScanKernel()) {
#if RTB_SCAN_HAVE_X86
    case ScanKernel::kAvx2:
      return SweepAvx2(scratch, q, out);
    case ScanKernel::kSse2:
      return SweepSse2(scratch, q, out);
#endif
#if RTB_SCAN_HAVE_NEON
    case ScanKernel::kNeon:
      return SweepNeon(scratch, q, out);
#endif
    default:
      return SweepScalar(scratch, q, out);
  }
}

}  // namespace rtb::rtree
