// k-nearest-neighbor search over the R-tree (branch-and-bound with a
// best-first priority queue, Roussopoulos-Kelley-Vincent / Hjaltason-Samet
// style). Not part of the paper's evaluation, but a standard capability of
// any adoptable R-tree library; its node accesses flow through the same
// buffer pool, so its disk behaviour can be studied with the same tools.

#ifndef RTB_RTREE_KNN_H_
#define RTB_RTREE_KNN_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "rtree/rtree.h"
#include "util/result.h"

namespace rtb::rtree {

/// One kNN result: the object and its (Euclidean) distance from the query
/// point to its rectangle.
struct Neighbor {
  ObjectId id = 0;
  double distance = 0.0;
  geom::Rect rect;
};

/// Finds the `k` objects whose rectangles are nearest to `point` (minimum
/// Euclidean distance from the point to the rectangle; 0 when the point is
/// inside). Results are sorted by ascending distance; fewer than `k` are
/// returned when the tree is smaller. `stats`, when non-null, accumulates
/// the number of nodes accessed.
Result<std::vector<Neighbor>> SearchKnn(const RTree& tree, geom::Point point,
                                        size_t k,
                                        QueryStats* stats = nullptr);

/// Distance helper: minimum Euclidean distance from `p` to `r` (0 inside).
double MinDistance(geom::Point p, const geom::Rect& r);

}  // namespace rtb::rtree

#endif  // RTB_RTREE_KNN_H_
