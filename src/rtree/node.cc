#include "rtree/node.h"

#include <cstring>
#include <string>

namespace rtb::rtree {
namespace {

constexpr uint32_t kNodeMagic = 0x52545250;  // "RTRP"

void PutU32(uint8_t* p, uint32_t v) { std::memcpy(p, &v, 4); }
void PutU16(uint8_t* p, uint16_t v) { std::memcpy(p, &v, 2); }
void PutU64(uint8_t* p, uint64_t v) { std::memcpy(p, &v, 8); }
void PutF64(uint8_t* p, double v) { std::memcpy(p, &v, 8); }

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
uint16_t GetU16(const uint8_t* p) {
  uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}
}  // namespace

Status SerializeNode(const Node& node, size_t page_size, uint8_t* out) {
  size_t needed = kNodeHeaderSize + node.entries.size() * kEntrySize;
  if (needed > page_size) {
    return Status::OutOfRange("node with " +
                              std::to_string(node.entries.size()) +
                              " entries does not fit in a " +
                              std::to_string(page_size) + "-byte page");
  }
  std::memset(out, 0, page_size);
  PutU32(out, kNodeMagic);
  PutU16(out + 4, node.level);
  PutU16(out + 6, static_cast<uint16_t>(node.entries.size()));
  uint8_t* p = out + kNodeHeaderSize;
  for (const Entry& e : node.entries) {
    PutF64(p, e.rect.lo.x);
    PutF64(p + 8, e.rect.lo.y);
    PutF64(p + 16, e.rect.hi.x);
    PutF64(p + 24, e.rect.hi.y);
    PutU64(p + 32, e.id);
    p += kEntrySize;
  }
  return Status::OK();
}

Result<NodeView> NodeView::Create(const uint8_t* data, size_t page_size) {
  if (page_size < kNodeHeaderSize) {
    return Status::Corruption("page smaller than node header");
  }
  if (GetU32(data) != kNodeMagic) {
    return Status::Corruption("bad node magic");
  }
  uint16_t level = GetU16(data + 4);
  uint16_t count = GetU16(data + 6);
  if (kNodeHeaderSize + static_cast<size_t>(count) * kEntrySize > page_size) {
    return Status::Corruption("node entry count exceeds page capacity");
  }
  return NodeView(data + kNodeHeaderSize, level, count);
}

Result<Node> DeserializeNode(const uint8_t* data, size_t page_size) {
  RTB_ASSIGN_OR_RETURN(NodeView view, NodeView::Create(data, page_size));
  Node node;
  node.level = view.level();
  const uint16_t count = view.count();
  node.entries.resize(count);
  for (uint16_t i = 0; i < count; ++i) {
    node.entries[i] = view.entry(i);
  }
  return node;
}

}  // namespace rtb::rtree
