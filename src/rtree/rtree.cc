#include "rtree/rtree.h"

#include <limits>
#include <string>
#include <utility>

#include "rtree/split.h"
#include "util/macros.h"

namespace rtb::rtree {

using geom::Rect;
using storage::PageGuard;
using storage::PageId;

Result<RTree> RTree::Create(storage::PageCache* pool, RTreeConfig config) {
  if (!config.IsValid()) {
    return Status::InvalidArgument("invalid RTreeConfig (need 2 <= 2*m <= n)");
  }
  if (config.max_entries > NodeCapacity(pool->page_size())) {
    return Status::InvalidArgument(
        "fanout " + std::to_string(config.max_entries) +
        " exceeds page capacity " +
        std::to_string(NodeCapacity(pool->page_size())));
  }
  RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->NewPage());
  Node empty_leaf;
  RTB_RETURN_IF_ERROR(
      SerializeNode(empty_leaf, pool->page_size(), guard.mutable_data()));
  return RTree(pool, config, guard.page_id(), /*height=*/1);
}

Result<RTree> RTree::Open(storage::PageCache* pool, RTreeConfig config,
                          PageId root, uint16_t height) {
  if (!config.IsValid()) {
    return Status::InvalidArgument("invalid RTreeConfig (need 2 <= 2*m <= n)");
  }
  if (height == 0) {
    return Status::InvalidArgument("height must be at least 1");
  }
  // Sanity-check the root page decodes and has the expected level.
  RTB_ASSIGN_OR_RETURN(PageGuard guard, pool->Fetch(root));
  RTB_ASSIGN_OR_RETURN(NodeView view,
                       NodeView::Create(guard.data(), pool->page_size()));
  if (view.level() != height - 1) {
    return Status::Corruption("root level " + std::to_string(view.level()) +
                              " does not match height " +
                              std::to_string(height));
  }
  return RTree(pool, config, root, height);
}

Status RTree::WriteNode(PageId page, const Node& node) {
  RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->FetchMutable(page));
  return SerializeNode(node, pool_->page_size(), guard.mutable_data());
}

Result<Entry> RTree::WriteSplit(PageId page, uint16_t level,
                                const std::vector<Entry>& entries) {
  SplitResult split = SplitEntries(entries, config_);
  Node node_a{level, std::move(split.group_a)};
  Node node_b{level, std::move(split.group_b)};
  RTB_RETURN_IF_ERROR(WriteNode(page, node_a));
  RTB_ASSIGN_OR_RETURN(PageGuard new_guard, pool_->NewPage());
  RTB_RETURN_IF_ERROR(SerializeNode(node_b, pool_->page_size(),
                                    new_guard.mutable_data()));
  return Entry{node_b.Mbr(), new_guard.page_id()};
}

size_t RTree::ChooseSubtree(const Node& node, const Rect& rect) const {
  RTB_CHECK(!node.entries.empty());
  const size_t count = node.entries.size();

  if (config_.insert_policy == InsertPolicy::kRStar && node.level == 1) {
    // R* rule for parents of leaves: minimize the increase of overlap with
    // the sibling entries; ties by area enlargement, then by area.
    size_t best = 0;
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < count; ++i) {
      Rect grown = geom::Union(node.entries[i].rect, rect);
      double overlap_delta = 0.0;
      for (size_t j = 0; j < count; ++j) {
        if (j == i) continue;
        overlap_delta +=
            geom::Intersection(grown, node.entries[j].rect).Area() -
            geom::Intersection(node.entries[i].rect, node.entries[j].rect)
                .Area();
      }
      double enlargement = geom::Enlargement(node.entries[i].rect, rect);
      double area = node.entries[i].rect.Area();
      if (overlap_delta < best_overlap ||
          (overlap_delta == best_overlap &&
           (enlargement < best_enlargement ||
            (enlargement == best_enlargement && area < best_area)))) {
        best = i;
        best_overlap = overlap_delta;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    return best;
  }

  // Guttman: least enlargement, ties by smaller area.
  size_t best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < count; ++i) {
    double enlargement = geom::Enlargement(node.entries[i].rect, rect);
    double area = node.entries[i].rect.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = i;
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

Result<RTree::InsertOutcome> RTree::InsertRec(PageId page, const Entry& entry,
                                              uint16_t target_level,
                                              InsertContext* ctx) {
  Node node;
  {
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    RTB_ASSIGN_OR_RETURN(node,
                         DeserializeNode(guard.data(), pool_->page_size()));
  }

  if (node.level != target_level) {
    size_t best = ChooseSubtree(node, entry.rect);
    PageId child = static_cast<PageId>(node.entries[best].id);
    RTB_ASSIGN_OR_RETURN(InsertOutcome child_outcome,
                         InsertRec(child, entry, target_level, ctx));
    node.entries[best].rect = child_outcome.mbr;
    if (child_outcome.split.has_value()) {
      node.entries.push_back(*child_outcome.split);
    }
  } else {
    node.entries.push_back(entry);
  }

  if (node.entries.size() <= config_.max_entries) {
    RTB_RETURN_IF_ERROR(WriteNode(page, node));
    return InsertOutcome{node.Mbr(), std::nullopt};
  }

  // Overflow treatment. R*: on the first overflow of each level per
  // top-level insertion (never at the root), remove the reinsert_fraction
  // of entries whose centers lie farthest from the node's MBR center and
  // queue them for reinsertion; otherwise split.
  const bool is_root = page == root_;
  if (config_.insert_policy == InsertPolicy::kRStar && ctx != nullptr &&
      !is_root && node.level < 64 &&
      (ctx->reinserted_levels & (uint64_t{1} << node.level)) == 0) {
    ctx->reinserted_levels |= uint64_t{1} << node.level;
    size_t p = static_cast<size_t>(config_.reinsert_fraction *
                                   static_cast<double>(node.entries.size()));
    p = std::max<size_t>(p, 1);
    // Keep at least min_entries in the node.
    p = std::min(p, node.entries.size() - config_.min_entries);
    if (p > 0) {
      geom::Point center = node.Mbr().Center();
      auto dist2 = [&center](const Entry& e) {
        geom::Point c = e.rect.Center();
        double dx = c.x - center.x, dy = c.y - center.y;
        return dx * dx + dy * dy;
      };
      // Farthest p entries leave the node; reinsertion starts with the
      // closest of them ("close reinsert").
      std::stable_sort(node.entries.begin(), node.entries.end(),
                       [&dist2](const Entry& a, const Entry& b) {
                         return dist2(a) < dist2(b);
                       });
      for (size_t i = node.entries.size() - p; i < node.entries.size();
           ++i) {
        ctx->pending.push_back(Orphan{node.entries[i], node.level});
      }
      node.entries.resize(node.entries.size() - p);
      RTB_RETURN_IF_ERROR(WriteNode(page, node));
      return InsertOutcome{node.Mbr(), std::nullopt};
    }
    // Fall through to a split when nothing can be removed.
  }

  RTB_ASSIGN_OR_RETURN(Entry sibling,
                       WriteSplit(page, node.level, node.entries));
  // Recompute this node's MBR from what WriteSplit kept in `page`.
  RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
  RTB_ASSIGN_OR_RETURN(Node kept,
                       DeserializeNode(guard.data(), pool_->page_size()));
  return InsertOutcome{kept.Mbr(), sibling};
}

Status RTree::InsertAtLevel(const Entry& entry, uint16_t target_level,
                            InsertContext* ctx) {
  RTB_ASSIGN_OR_RETURN(InsertOutcome outcome,
                       InsertRec(root_, entry, target_level, ctx));
  if (outcome.split.has_value()) {
    // Root split: grow the tree by one level.
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->NewPage());
    Node new_root;
    new_root.level = height_;  // Old root level is height_ - 1.
    new_root.entries.push_back(Entry{outcome.mbr, root_});
    new_root.entries.push_back(*outcome.split);
    RTB_RETURN_IF_ERROR(SerializeNode(new_root, pool_->page_size(),
                                      guard.mutable_data()));
    root_ = guard.page_id();
    ++height_;
  }
  return Status::OK();
}

Status RTree::Insert(const Rect& rect, ObjectId id) {
  if (rect.is_empty()) {
    return Status::InvalidArgument("cannot insert an empty rectangle");
  }
  InsertContext ctx;
  RTB_RETURN_IF_ERROR(InsertAtLevel(Entry{rect, id}, /*target_level=*/0,
                                    &ctx));
  // Drain the R* forced-reinsert queue. Reinsertions share the context, so
  // each level reinserts at most once per public Insert; later overflows
  // split. The queue can grow while draining (another level reinserting).
  for (size_t i = 0; i < ctx.pending.size(); ++i) {
    Orphan orphan = ctx.pending[i];
    RTB_RETURN_IF_ERROR(InsertAtLevel(orphan.entry, orphan.level, &ctx));
  }
  return Status::OK();
}

Result<RTree::DeleteOutcome> RTree::DeleteRec(PageId page, const Rect& rect,
                                              ObjectId id, bool is_root,
                                              std::vector<Orphan>* orphans) {
  Node node;
  {
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    RTB_ASSIGN_OR_RETURN(node,
                         DeserializeNode(guard.data(), pool_->page_size()));
  }

  if (node.is_leaf()) {
    bool found = false;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == id && node.entries[i].rect == rect) {
        node.entries.erase(node.entries.begin() +
                           static_cast<ptrdiff_t>(i));
        found = true;
        break;
      }
    }
    if (!found) return DeleteOutcome{false, node.Mbr(), false};
    if (!is_root && node.entries.size() < config_.min_entries) {
      // Dissolve this leaf; its remaining entries are reinserted later.
      for (const Entry& e : node.entries) {
        orphans->push_back(Orphan{e, 0});
      }
      return DeleteOutcome{true, Rect::Empty(), true};
    }
    RTB_RETURN_IF_ERROR(WriteNode(page, node));
    return DeleteOutcome{true, node.Mbr(), false};
  }

  // Internal node: try every child whose MBR contains the target rect.
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (!node.entries[i].rect.Contains(rect)) continue;
    PageId child = static_cast<PageId>(node.entries[i].id);
    RTB_ASSIGN_OR_RETURN(DeleteOutcome child_outcome,
                         DeleteRec(child, rect, id, false, orphans));
    if (!child_outcome.found) continue;
    if (child_outcome.underflow) {
      node.entries.erase(node.entries.begin() + static_cast<ptrdiff_t>(i));
    } else {
      node.entries[i].rect = child_outcome.mbr;
    }
    if (!is_root && node.entries.size() < config_.min_entries) {
      for (const Entry& e : node.entries) {
        orphans->push_back(Orphan{e, node.level});
      }
      return DeleteOutcome{true, Rect::Empty(), true};
    }
    RTB_RETURN_IF_ERROR(WriteNode(page, node));
    return DeleteOutcome{true, node.Mbr(), false};
  }
  return DeleteOutcome{false, node.Mbr(), false};
}

Result<bool> RTree::Delete(const Rect& rect, ObjectId id) {
  std::vector<Orphan> orphans;
  RTB_ASSIGN_OR_RETURN(DeleteOutcome outcome,
                       DeleteRec(root_, rect, id, /*is_root=*/true, &orphans));
  if (!outcome.found) return false;

  // Reinsert orphaned entries at their original levels. Internal-node
  // orphans must go first: reinserting them can only happen while the tree
  // is at least as tall as their level requires, and leaf reinserts can grow
  // the tree which stays compatible.
  std::stable_sort(orphans.begin(), orphans.end(),
                   [](const Orphan& a, const Orphan& b) {
                     return a.level > b.level;
                   });
  for (const Orphan& orphan : orphans) {
    // Plain (no forced-reinsert) insertion at the orphan's level.
    RTB_RETURN_IF_ERROR(InsertAtLevel(orphan.entry, orphan.level, nullptr));
  }

  // Shrink the root while it is an internal node with a single child.
  for (;;) {
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(root_));
    RTB_ASSIGN_OR_RETURN(NodeView view,
                         NodeView::Create(guard.data(), pool_->page_size()));
    if (view.is_leaf() || view.count() != 1) break;
    root_ = static_cast<PageId>(view.id(0));
    --height_;
  }
  return true;
}

Status RTree::Search(const Rect& query, std::vector<ObjectId>* out,
                     QueryStats* stats) const {
  if (query.is_empty()) return Status::OK();
  // Explicit DFS stack instead of recursion: each node is pinned only while
  // its slots are scanned, so a query never holds more than one PageGuard
  // and works with a pool of any size (the recursive version pinned the
  // whole root-to-leaf path, deadlocking pools with fewer frames than the
  // tree is tall). The stack is thread_local so the steady-state query loop
  // performs zero heap allocations per node visit.
  thread_local std::vector<PageId> stack;
  stack.clear();
  stack.push_back(root_);
  const size_t page_size = pool_->page_size();
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    if (stats != nullptr) ++stats->nodes_accessed;
    RTB_ASSIGN_OR_RETURN(NodeView view,
                         NodeView::Create(guard.data(), page_size));
    const uint16_t n = view.count();
    if (view.is_leaf()) {
      for (uint16_t i = 0; i < n; ++i) {
        if (view.Intersects(i, query)) out->push_back(view.id(i));
      }
    } else {
      // Push intersecting children in reverse slot order so they pop in
      // slot order: the page access sequence matches the recursive
      // preorder exactly (same stats, same hit/miss stream).
      for (uint16_t i = n; i > 0; --i) {
        if (view.Intersects(i - 1, query)) {
          stack.push_back(static_cast<PageId>(view.id(i - 1)));
        }
      }
    }
  }
  return Status::OK();
}

Status RTree::SearchPoint(geom::Point p, std::vector<ObjectId>* out,
                          QueryStats* stats) const {
  return Search(Rect::FromPoint(p), out, stats);
}

Result<uint64_t> RTree::CountEntries() const {
  // Depth-first count; same single-guard discipline as Search.
  std::vector<PageId> stack;
  stack.push_back(root_);
  uint64_t total = 0;
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    RTB_ASSIGN_OR_RETURN(PageGuard guard, pool_->Fetch(page));
    RTB_ASSIGN_OR_RETURN(NodeView view,
                         NodeView::Create(guard.data(), pool_->page_size()));
    if (view.is_leaf()) {
      total += view.count();
      continue;
    }
    for (uint16_t i = view.count(); i > 0; --i) {
      stack.push_back(static_cast<PageId>(view.id(i - 1)));
    }
  }
  return total;
}

}  // namespace rtb::rtree
