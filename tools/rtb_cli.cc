// rtb_cli — command-line front end for the rtree-buffer library.
//
// Subcommands:
//   generate  --kind=uniform|region|tiger|cfd --n=N --seed=S --out=FILE
//       Write a synthetic data set as an rtb-rects file.
//   build     --data=FILE --index=FILE --fanout=N --algo=HS|NX|STR|TAT|RSTAR
//       Bulk-load (or insert) the data into a persistent index file. Tree
//       metadata (root page, height, fanout) is stored in FILE.meta.
//   stats     --index=FILE
//       Print tree shape, per-level node counts, and MBR aggregates.
//   validate  --index=FILE [--strict=0|1]
//       Check structural invariants.
//   predict   --index=FILE --buffer=B [--qx=QX --qy=QY] [--pin=L]
//             [--data=FILE]
//       Model-predicted disk accesses per query; --data switches to the
//       data-driven query model using that file's rectangle centers.
//   query     --index=FILE --buffer=B --queries=N [--qx --qy --seed]
//             [--threads=T --shards=S]
//       Actually execute a random query workload through an LRU buffer
//       pool and report measured disk accesses next to the prediction.
//       --threads=T fans the stream out over T workers on a lock-striped
//       (sharded) pool and additionally reports throughput and hit rate;
//       --threads=1 (default) is the paper's serial, bit-reproducible path.
//   knn       --index=FILE --x=X --y=Y [--k=K] [--buffer=B]
//       Report the K objects nearest to (X, Y).
//
// Example session:
//   rtb_cli generate --kind=tiger --n=53145 --out=roads.rects
//   rtb_cli build --data=roads.rects --index=roads.idx --fanout=100 --algo=HS
//   rtb_cli predict --index=roads.idx --buffer=200
//   rtb_cli query --index=roads.idx --buffer=200 --queries=100000

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/rtb.h"

namespace rtb::cli {
namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

int Fail(const std::string& message) {
  std::fprintf(stderr, "rtb_cli: %s\n", message.c_str());
  return 1;
}

int FailStatus(const char* what, const Status& status) {
  return Fail(std::string(what) + ": " + status.ToString());
}

// Parsed --name=value arguments with defaults.
class Args {
 public:
  Args(int argc, char** argv, int first,
       std::map<std::string, std::string> defaults)
      : values_(std::move(defaults)) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      size_t eq = arg.find('=');
      if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
        ok_ = false;
        error_ = "malformed argument '" + arg + "' (want --name=value)";
        return;
      }
      std::string name = arg.substr(2, eq - 2);
      if (values_.find(name) == values_.end()) {
        ok_ = false;
        error_ = "unknown flag --" + name;
        return;
      }
      values_[name] = arg.substr(eq + 1);
    }
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? "" : it->second;
  }
  uint64_t GetInt(const std::string& name) const {
    return std::strtoull(Get(name).c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& name) const {
    return std::strtod(Get(name).c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string error_;
};

// Index metadata sidecar (FILE.meta): "rtb-index root height fanout".
struct IndexMeta {
  storage::PageId root = 0;
  uint16_t height = 0;
  uint32_t fanout = 0;
};

Status SaveMeta(const std::string& index_path, const IndexMeta& meta) {
  std::ofstream out(index_path + ".meta");
  if (!out) return Status::IoError("cannot write " + index_path + ".meta");
  out << "rtb-index " << meta.root << ' ' << meta.height << ' '
      << meta.fanout << '\n';
  return out ? Status::OK()
             : Status::IoError("write failed: " + index_path + ".meta");
}

Result<IndexMeta> LoadMeta(const std::string& index_path) {
  std::ifstream in(index_path + ".meta");
  if (!in) return Status::IoError("cannot open " + index_path + ".meta");
  std::string magic;
  IndexMeta meta;
  uint32_t root, height;
  if (!(in >> magic >> root >> height >> meta.fanout) ||
      magic != "rtb-index") {
    return Status::Corruption(index_path + ".meta: bad format");
  }
  meta.root = root;
  meta.height = static_cast<uint16_t>(height);
  return meta;
}

Result<rtree::LoadAlgorithm> ParseAlgo(const std::string& name) {
  if (name == "HS") return rtree::LoadAlgorithm::kHilbertSort;
  if (name == "NX") return rtree::LoadAlgorithm::kNearestX;
  if (name == "STR") return rtree::LoadAlgorithm::kStr;
  if (name == "TAT" || name == "RSTAR") {
    return rtree::LoadAlgorithm::kTupleAtATime;
  }
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (HS|NX|STR|TAT|RSTAR)");
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

int CmdGenerate(int argc, char** argv) {
  Args args(argc, argv, 2,
            {{"kind", "uniform"}, {"n", "10000"}, {"seed", "1"},
             {"out", ""}});
  if (!args.ok()) return Fail(args.error());
  if (args.Get("out").empty()) return Fail("generate needs --out=FILE");
  Rng rng(args.GetInt("seed"));
  const size_t n = args.GetInt("n");
  std::vector<geom::Rect> rects;
  const std::string kind = args.Get("kind");
  if (kind == "uniform") {
    rects = data::GenerateUniformPoints(n, &rng);
  } else if (kind == "region") {
    rects = data::GenerateSyntheticRegion(n, &rng);
  } else if (kind == "tiger") {
    data::TigerParams params;
    params.num_rects = n;
    rects = data::GenerateTigerSurrogate(params, &rng);
  } else if (kind == "cfd") {
    data::CfdParams params;
    params.num_points = n;
    rects = data::GenerateCfdSurrogate(params, &rng);
  } else {
    return Fail("unknown kind '" + kind + "' (uniform|region|tiger|cfd)");
  }
  if (Status s = data::SaveRects(args.Get("out"), rects); !s.ok()) {
    return FailStatus("save", s);
  }
  std::printf("wrote %zu rectangles to %s\n", rects.size(),
              args.Get("out").c_str());
  return 0;
}

int CmdBuild(int argc, char** argv) {
  Args args(argc, argv, 2,
            {{"data", ""}, {"index", ""}, {"fanout", "100"},
             {"algo", "HS"}});
  if (!args.ok()) return Fail(args.error());
  if (args.Get("data").empty() || args.Get("index").empty()) {
    return Fail("build needs --data=FILE and --index=FILE");
  }
  auto rects = data::LoadRects(args.Get("data"));
  if (!rects.ok()) return FailStatus("load data", rects.status());

  auto store = storage::FilePageStore::Create(args.Get("index"));
  if (!store.ok()) return FailStatus("create index", store.status());

  const uint32_t fanout = static_cast<uint32_t>(args.GetInt("fanout"));
  rtree::RTreeConfig config = args.Get("algo") == "RSTAR"
                                  ? rtree::RTreeConfig::RStar(fanout)
                                  : rtree::RTreeConfig::WithFanout(fanout);
  auto algo = ParseAlgo(args.Get("algo"));
  if (!algo.ok()) return FailStatus("algorithm", algo.status());

  auto built = rtree::BuildRTree(store->get(), config, *rects, *algo);
  if (!built.ok()) return FailStatus("build", built.status());
  if (Status s = (*store)->Sync(); !s.ok()) return FailStatus("sync", s);
  IndexMeta meta{built->root, built->height, fanout};
  if (Status s = SaveMeta(args.Get("index"), meta); !s.ok()) {
    return FailStatus("meta", s);
  }
  std::printf("built %s index: %u nodes, height %u, root page %u -> %s\n",
              args.Get("algo").c_str(), built->num_nodes, built->height,
              built->root, args.Get("index").c_str());
  return 0;
}

// Opens the index + summary for the read-only subcommands.
struct OpenedIndex {
  std::unique_ptr<storage::FilePageStore> store;
  IndexMeta meta;
  std::unique_ptr<rtree::TreeSummary> summary;
};

Result<OpenedIndex> OpenIndex(const std::string& path) {
  OpenedIndex opened;
  RTB_ASSIGN_OR_RETURN(opened.meta, LoadMeta(path));
  RTB_ASSIGN_OR_RETURN(opened.store, storage::FilePageStore::Open(path));
  RTB_ASSIGN_OR_RETURN(
      rtree::TreeSummary summary,
      rtree::TreeSummary::Extract(opened.store.get(), opened.meta.root));
  opened.summary =
      std::make_unique<rtree::TreeSummary>(std::move(summary));
  opened.store->ResetStats();
  return opened;
}

int CmdStats(int argc, char** argv) {
  Args args(argc, argv, 2, {{"index", ""}});
  if (!args.ok()) return Fail(args.error());
  auto opened = OpenIndex(args.Get("index"));
  if (!opened.ok()) return FailStatus("open", opened.status());
  const auto& s = *opened->summary;
  std::printf("index:   %s\n", args.Get("index").c_str());
  std::printf("fanout:  %u\n", opened->meta.fanout);
  std::printf("height:  %u levels\n", s.height());
  std::printf("nodes:   %zu (data entries: %llu)\n", s.NumNodes(),
              static_cast<unsigned long long>(s.NumDataEntries()));
  for (uint16_t l = 0; l < s.height(); ++l) {
    std::printf("  level %u (paper level %u): %u nodes\n", l,
                s.height() - 1 - l,
                s.NodesAtLevel(static_cast<uint16_t>(l)));
  }
  std::printf("total MBR area (A):      %.4f\n", s.TotalArea());
  std::printf("total x-extents (Lx):    %.4f\n", s.TotalXExtent());
  std::printf("total y-extents (Ly):    %.4f\n", s.TotalYExtent());
  std::printf("mean entries per node:   %.1f\n", s.MeanEntriesPerNode());
  std::printf("bufferless EP(point):    %.4f nodes/query\n", s.TotalArea());
  return 0;
}

int CmdValidate(int argc, char** argv) {
  Args args(argc, argv, 2, {{"index", ""}, {"strict", "0"}});
  if (!args.ok()) return Fail(args.error());
  auto meta = LoadMeta(args.Get("index"));
  if (!meta.ok()) return FailStatus("meta", meta.status());
  auto store = storage::FilePageStore::Open(args.Get("index"));
  if (!store.ok()) return FailStatus("open", store.status());
  rtree::ValidateOptions options;
  options.check_min_fill = args.GetInt("strict") != 0;
  rtree::ValidationReport report =
      rtree::ValidateTree(store->get(), meta->root,
                          rtree::RTreeConfig::WithFanout(meta->fanout),
                          options);
  std::printf("nodes: %llu, data entries: %llu\n",
              static_cast<unsigned long long>(report.num_nodes),
              static_cast<unsigned long long>(report.num_data_entries));
  if (report.ok) {
    std::printf("OK: all structural invariants hold\n");
    return 0;
  }
  for (const std::string& issue : report.issues) {
    std::printf("ISSUE: %s\n", issue.c_str());
  }
  return 1;
}

int CmdPredict(int argc, char** argv) {
  Args args(argc, argv, 2,
            {{"index", ""}, {"buffer", "100"}, {"qx", "0"}, {"qy", "0"},
             {"pin", "0"}, {"data", ""}});
  if (!args.ok()) return Fail(args.error());
  auto opened = OpenIndex(args.Get("index"));
  if (!opened.ok()) return FailStatus("open", opened.status());

  model::QuerySpec spec;
  std::vector<geom::Point> centers;
  if (!args.Get("data").empty()) {
    auto rects = data::LoadRects(args.Get("data"));
    if (!rects.ok()) return FailStatus("load data", rects.status());
    centers = data::Centers(*rects);
    spec = model::QuerySpec::DataDrivenRegion(args.GetDouble("qx"),
                                              args.GetDouble("qy"));
  } else {
    spec = model::QuerySpec::UniformRegion(args.GetDouble("qx"),
                                           args.GetDouble("qy"));
  }
  auto probs = model::AccessProbabilities(*opened->summary, spec,
                                          centers.empty() ? nullptr
                                                          : &centers);
  if (!probs.ok()) return FailStatus("model", probs.status());

  const uint64_t buffer = args.GetInt("buffer");
  const uint16_t pin = static_cast<uint16_t>(args.GetInt("pin"));
  std::printf("query model:   %s, %g x %g\n",
              centers.empty() ? "uniform" : "data-driven",
              args.GetDouble("qx"), args.GetDouble("qy"));
  std::printf("nodes/query (bufferless):   %.4f\n",
              model::ExpectedNodeAccesses(*probs));
  if (pin == 0) {
    std::printf("disk accesses/query (B=%llu): %.4f (continuous: %.4f)\n",
                static_cast<unsigned long long>(buffer),
                model::ExpectedDiskAccesses(*probs, buffer),
                model::ExpectedDiskAccessesContinuous(*probs, buffer));
  } else {
    auto pinned = model::ExpectedDiskAccessesPinned(*opened->summary, *probs,
                                                    buffer, pin);
    if (!pinned.feasible) {
      return Fail("pinning " + std::to_string(pin) + " levels needs " +
                  std::to_string(pinned.pinned_pages) +
                  " pages but the buffer has only " +
                  std::to_string(buffer));
    }
    std::printf(
        "disk accesses/query (B=%llu, %u levels pinned = %llu pages): "
        "%.4f\n",
        static_cast<unsigned long long>(buffer), pin,
        static_cast<unsigned long long>(pinned.pinned_pages),
        pinned.disk_accesses);
  }
  return 0;
}

int CmdQuery(int argc, char** argv) {
  Args args(argc, argv, 2,
            {{"index", ""}, {"buffer", "100"}, {"queries", "100000"},
             {"qx", "0"}, {"qy", "0"}, {"seed", "1"}, {"warmup", "10000"},
             {"threads", "1"}, {"shards", "0"}});
  if (!args.ok()) return Fail(args.error());
  auto opened = OpenIndex(args.Get("index"));
  if (!opened.ok()) return FailStatus("open", opened.status());

  const uint64_t buffer = args.GetInt("buffer");
  const uint32_t threads =
      std::max<uint32_t>(1, static_cast<uint32_t>(args.GetInt("threads")));

  // threads=1 keeps the paper's serial LRU pool (bit-identical counts);
  // threads>1 switches to the lock-striped pool, which is what makes the
  // worker fan-out safe.
  std::unique_ptr<storage::PageCache> pool;
  if (threads == 1) {
    pool = storage::BufferPool::MakeLru(opened->store.get(), buffer);
  } else {
    pool = storage::ShardedBufferPool::MakeLru(opened->store.get(), buffer,
                                               args.GetInt("shards"));
  }
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(
                                     opened->meta.fanout),
                                 opened->meta.root, opened->meta.height);
  if (!tree.ok()) return FailStatus("open tree", tree.status());

  model::QuerySpec spec = model::QuerySpec::UniformRegion(
      args.GetDouble("qx"), args.GetDouble("qy"));
  auto gen = sim::MakeGenerator(spec);
  if (!gen.ok()) return FailStatus("generator", gen.status());
  sim::ParallelOptions options;
  options.threads = threads;
  options.base_seed = args.GetInt("seed");
  options.warmup = args.GetInt("warmup");
  options.queries = args.GetInt("queries");
  auto result = sim::RunParallelWorkload(&*tree, opened->store.get(),
                                         gen->get(), options);
  if (!result.ok()) return FailStatus("workload", result.status());

  auto probs = model::AccessProbabilities(*opened->summary, spec);
  std::printf("executed %llu queries (after %llu warm-up)\n",
              static_cast<unsigned long long>(result->total.queries),
              static_cast<unsigned long long>(args.GetInt("warmup")));
  if (threads > 1) {
    auto* sharded = static_cast<storage::ShardedBufferPool*>(pool.get());
    std::printf("threads:   %u workers over %zu pool shards\n", threads,
                sharded->num_shards());
    std::printf("throughput: %.0f queries/s (measured phase, %.3f s)\n",
                result->QueriesPerSecond(), result->elapsed_seconds);
    std::printf("hit rate:  %.2f%% (merged over shards)\n",
                100.0 * pool->AggregateStats().HitRate());
  }
  std::printf("measured:  %.4f disk accesses/query (%.4f nodes/query)\n",
              result->total.MeanDiskAccesses(),
              result->total.MeanNodeAccesses());
  std::printf("predicted: %.4f disk accesses/query (LRU buffer model)\n",
              model::ExpectedDiskAccesses(*probs, buffer));
  if (threads > 1) {
    std::printf(
        "note: with --threads>1 replacement is per-shard LRU; measured hit\n"
        "      rates can deviate slightly from the serial-stream model.\n");
  }
  return 0;
}

int CmdKnn(int argc, char** argv) {
  Args args(argc, argv, 2,
            {{"index", ""}, {"x", "0.5"}, {"y", "0.5"}, {"k", "5"},
             {"buffer", "64"}});
  if (!args.ok()) return Fail(args.error());
  auto opened = OpenIndex(args.Get("index"));
  if (!opened.ok()) return FailStatus("open", opened.status());
  auto pool = storage::BufferPool::MakeLru(opened->store.get(),
                                           args.GetInt("buffer"));
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(
                                     opened->meta.fanout),
                                 opened->meta.root, opened->meta.height);
  if (!tree.ok()) return FailStatus("open tree", tree.status());
  geom::Point p{args.GetDouble("x"), args.GetDouble("y")};
  rtree::QueryStats stats;
  auto neighbors = rtree::SearchKnn(*tree, p, args.GetInt("k"), &stats);
  if (!neighbors.ok()) return FailStatus("knn", neighbors.status());
  std::printf("%zu nearest to (%g, %g), %llu nodes touched:\n",
              neighbors->size(), p.x, p.y,
              static_cast<unsigned long long>(stats.nodes_accessed));
  for (const rtree::Neighbor& n : *neighbors) {
    std::printf("  object %llu  distance %.6f  "
                "mbr=(%.4f,%.4f)-(%.4f,%.4f)\n",
                static_cast<unsigned long long>(n.id), n.distance,
                n.rect.lo.x, n.rect.lo.y, n.rect.hi.x, n.rect.hi.y);
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: rtb_cli <generate|build|stats|validate|predict|query|knn> "
      "[--flag=value ...]\n"
      "see the header of tools/rtb_cli.cc for details\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "build") return CmdBuild(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "validate") return CmdValidate(argc, argv);
  if (command == "predict") return CmdPredict(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "knn") return CmdKnn(argc, argv);
  return Usage();
}

}  // namespace
}  // namespace rtb::cli

int main(int argc, char** argv) { return rtb::cli::Main(argc, argv); }
