// rtb_cli — command-line front end for the rtree-buffer library.
//
// Subcommands:
//   generate  --kind=uniform|region|tiger|cfd --n=N --seed=S --out=FILE
//       Write a synthetic data set as an rtb-rects file.
//   build     --data=FILE --index=FILE --fanout=N --algo=HS|NX|STR|TAT|RSTAR
//       Bulk-load (or insert) the data into a persistent index file. Tree
//       metadata (root page, height, fanout) is stored in FILE.meta.
//   stats     --index=FILE
//       Print tree shape, per-level node counts, and MBR aggregates.
//   validate  --index=FILE [--strict=0|1]
//       Check structural invariants.
//   predict   --index=FILE --buffer=B [--qx=QX --qy=QY] [--pin=L]
//             [--data=FILE]
//       Model-predicted disk accesses per query; --data switches to the
//       data-driven query model using that file's rectangle centers.
//   query     --index=FILE --buffer=B --queries=N [--qx --qy --seed]
//             [--threads=T --shards=S]
//       Actually execute a random query workload through an LRU buffer
//       pool and report measured disk accesses next to the prediction.
//       --threads=T fans the stream out over T workers on a lock-striped
//       (sharded) pool and additionally reports throughput and hit rate;
//       --threads=1 (default) is the paper's serial, bit-reproducible path.
//   run       <spec.json> [--out=FILE]
//       Execute a declarative experiment spec (engine/spec.h) end to end —
//       build or open the tree, pin levels, warm up, measure every query
//       class — and write the machine-readable run report as JSON.
//       --out=- prints only the JSON document to stdout.
//   knn       --index=FILE --x=X --y=Y [--k=K] [--buffer=B]
//       Report the K objects nearest to (X, Y).
//
// Every subcommand accepts --help. Unknown subcommands and unknown or
// malformed flags exit non-zero with a usage string.
//
// Example session:
//   rtb_cli generate --kind=tiger --n=53145 --out=roads.rects
//   rtb_cli build --data=roads.rects --index=roads.idx --fanout=100 --algo=HS
//   rtb_cli predict --index=roads.idx --buffer=200
//   rtb_cli query --index=roads.idx --buffer=200 --queries=100000
//   rtb_cli run experiment.json

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/rtb.h"

namespace rtb::cli {
namespace {

// ---------------------------------------------------------------------------
// Small helpers
// ---------------------------------------------------------------------------

int Fail(const std::string& message) {
  std::fprintf(stderr, "rtb_cli: %s\n", message.c_str());
  return 1;
}

int FailStatus(const char* what, const Status& status) {
  return Fail(std::string(what) + ": " + status.ToString());
}

int FailUsage(const std::string& message, const char* usage) {
  std::fprintf(stderr, "rtb_cli: %s\n%s", message.c_str(), usage);
  return 2;
}

// True when any argument after the subcommand is --help/-h.
bool WantsHelp(int argc, char** argv) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      return true;
    }
  }
  return false;
}

// Parsed --name=value arguments with defaults.
class Args {
 public:
  Args(int argc, char** argv, int first,
       std::map<std::string, std::string> defaults)
      : values_(std::move(defaults)) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      size_t eq = arg.find('=');
      if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
        ok_ = false;
        error_ = "malformed argument '" + arg + "' (want --name=value)";
        return;
      }
      std::string name = arg.substr(2, eq - 2);
      if (values_.find(name) == values_.end()) {
        ok_ = false;
        error_ = "unknown flag --" + name;
        return;
      }
      values_[name] = arg.substr(eq + 1);
    }
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }

  std::string Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? "" : it->second;
  }
  uint64_t GetInt(const std::string& name) const {
    return std::strtoull(Get(name).c_str(), nullptr, 10);
  }
  double GetDouble(const std::string& name) const {
    return std::strtod(Get(name).c_str(), nullptr);
  }

 private:
  std::map<std::string, std::string> values_;
  bool ok_ = true;
  std::string error_;
};

// Opens the index + summary for the read-only subcommands.
struct OpenedIndex {
  std::unique_ptr<storage::FilePageStore> store;
  engine::IndexMeta meta;
  std::unique_ptr<rtree::TreeSummary> summary;
};

Result<OpenedIndex> OpenIndex(const std::string& path) {
  OpenedIndex opened;
  RTB_ASSIGN_OR_RETURN(opened.meta, engine::LoadIndexMeta(path));
  RTB_ASSIGN_OR_RETURN(opened.store, storage::FilePageStore::Open(path));
  RTB_ASSIGN_OR_RETURN(
      rtree::TreeSummary summary,
      rtree::TreeSummary::Extract(opened.store.get(), opened.meta.root));
  opened.summary =
      std::make_unique<rtree::TreeSummary>(std::move(summary));
  opened.store->ResetStats();
  return opened;
}

Result<rtree::LoadAlgorithm> ParseAlgo(const std::string& name) {
  if (name == "HS") return rtree::LoadAlgorithm::kHilbertSort;
  if (name == "NX") return rtree::LoadAlgorithm::kNearestX;
  if (name == "STR") return rtree::LoadAlgorithm::kStr;
  if (name == "TAT" || name == "RSTAR") {
    return rtree::LoadAlgorithm::kTupleAtATime;
  }
  return Status::InvalidArgument("unknown algorithm '" + name +
                                 "' (HS|NX|STR|TAT|RSTAR)");
}

// ---------------------------------------------------------------------------
// Subcommands
// ---------------------------------------------------------------------------

constexpr char kGenerateUsage[] =
    "usage: rtb_cli generate --kind=uniform|region|tiger|cfd --n=N\n"
    "                        --seed=S --out=FILE\n"
    "  Write a synthetic data set as an rtb-rects file.\n";

int CmdGenerate(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kGenerateUsage, stdout), 0;
  Args args(argc, argv, 2,
            {{"kind", "uniform"}, {"n", "10000"}, {"seed", "1"},
             {"out", ""}});
  if (!args.ok()) return FailUsage(args.error(), kGenerateUsage);
  if (args.Get("out").empty()) {
    return FailUsage("generate needs --out=FILE", kGenerateUsage);
  }
  Rng rng(args.GetInt("seed"));
  const size_t n = args.GetInt("n");
  std::vector<geom::Rect> rects;
  const std::string kind = args.Get("kind");
  if (kind == "uniform") {
    rects = data::GenerateUniformPoints(n, &rng);
  } else if (kind == "region") {
    rects = data::GenerateSyntheticRegion(n, &rng);
  } else if (kind == "tiger") {
    data::TigerParams params;
    params.num_rects = n;
    rects = data::GenerateTigerSurrogate(params, &rng);
  } else if (kind == "cfd") {
    data::CfdParams params;
    params.num_points = n;
    rects = data::GenerateCfdSurrogate(params, &rng);
  } else {
    return FailUsage("unknown kind '" + kind +
                     "' (uniform|region|tiger|cfd)", kGenerateUsage);
  }
  if (Status s = data::SaveRects(args.Get("out"), rects); !s.ok()) {
    return FailStatus("save", s);
  }
  std::printf("wrote %zu rectangles to %s\n", rects.size(),
              args.Get("out").c_str());
  return 0;
}

constexpr char kBuildUsage[] =
    "usage: rtb_cli build --data=FILE --index=FILE --fanout=N\n"
    "                     --algo=HS|NX|STR|TAT|RSTAR\n"
    "  Bulk-load the data into a persistent index file (+ FILE.meta).\n";

int CmdBuild(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kBuildUsage, stdout), 0;
  Args args(argc, argv, 2,
            {{"data", ""}, {"index", ""}, {"fanout", "100"},
             {"algo", "HS"}});
  if (!args.ok()) return FailUsage(args.error(), kBuildUsage);
  if (args.Get("data").empty() || args.Get("index").empty()) {
    return FailUsage("build needs --data=FILE and --index=FILE",
                     kBuildUsage);
  }
  auto rects = data::LoadRects(args.Get("data"));
  if (!rects.ok()) return FailStatus("load data", rects.status());

  auto store = storage::FilePageStore::Create(args.Get("index"));
  if (!store.ok()) return FailStatus("create index", store.status());

  const uint32_t fanout = static_cast<uint32_t>(args.GetInt("fanout"));
  rtree::RTreeConfig config = args.Get("algo") == "RSTAR"
                                  ? rtree::RTreeConfig::RStar(fanout)
                                  : rtree::RTreeConfig::WithFanout(fanout);
  auto algo = ParseAlgo(args.Get("algo"));
  if (!algo.ok()) return FailStatus("algorithm", algo.status());

  auto built = rtree::BuildRTree(store->get(), config, *rects, *algo);
  if (!built.ok()) return FailStatus("build", built.status());
  if (Status s = (*store)->Close(); !s.ok()) return FailStatus("close", s);
  engine::IndexMeta meta{built->root, built->height, fanout};
  if (Status s = engine::SaveIndexMeta(args.Get("index"), meta); !s.ok()) {
    return FailStatus("meta", s);
  }
  std::printf("built %s index: %u nodes, height %u, root page %u -> %s\n",
              args.Get("algo").c_str(), built->num_nodes, built->height,
              built->root, args.Get("index").c_str());
  return 0;
}

constexpr char kStatsUsage[] =
    "usage: rtb_cli stats --index=FILE\n"
    "  Print tree shape, per-level node counts, and MBR aggregates.\n";

int CmdStats(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kStatsUsage, stdout), 0;
  Args args(argc, argv, 2, {{"index", ""}});
  if (!args.ok()) return FailUsage(args.error(), kStatsUsage);
  auto opened = OpenIndex(args.Get("index"));
  if (!opened.ok()) return FailStatus("open", opened.status());
  const auto& s = *opened->summary;
  std::printf("index:   %s\n", args.Get("index").c_str());
  std::printf("fanout:  %u\n", opened->meta.fanout);
  std::printf("height:  %u levels\n", s.height());
  std::printf("nodes:   %zu (data entries: %llu)\n", s.NumNodes(),
              static_cast<unsigned long long>(s.NumDataEntries()));
  for (uint16_t l = 0; l < s.height(); ++l) {
    std::printf("  level %u (paper level %u): %u nodes\n", l,
                s.height() - 1 - l,
                s.NodesAtLevel(static_cast<uint16_t>(l)));
  }
  std::printf("total MBR area (A):      %.4f\n", s.TotalArea());
  std::printf("total x-extents (Lx):    %.4f\n", s.TotalXExtent());
  std::printf("total y-extents (Ly):    %.4f\n", s.TotalYExtent());
  std::printf("mean entries per node:   %.1f\n", s.MeanEntriesPerNode());
  std::printf("bufferless EP(point):    %.4f nodes/query\n", s.TotalArea());
  return 0;
}

constexpr char kValidateUsage[] =
    "usage: rtb_cli validate --index=FILE [--strict=0|1]\n"
    "  Check structural invariants of an index.\n";

int CmdValidate(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kValidateUsage, stdout), 0;
  Args args(argc, argv, 2, {{"index", ""}, {"strict", "0"}});
  if (!args.ok()) return FailUsage(args.error(), kValidateUsage);
  auto meta = engine::LoadIndexMeta(args.Get("index"));
  if (!meta.ok()) return FailStatus("meta", meta.status());
  auto store = storage::FilePageStore::Open(args.Get("index"));
  if (!store.ok()) return FailStatus("open", store.status());
  rtree::ValidateOptions options;
  options.check_min_fill = args.GetInt("strict") != 0;
  rtree::ValidationReport report =
      rtree::ValidateTree(store->get(), meta->root,
                          rtree::RTreeConfig::WithFanout(meta->fanout),
                          options);
  std::printf("nodes: %llu, data entries: %llu\n",
              static_cast<unsigned long long>(report.num_nodes),
              static_cast<unsigned long long>(report.num_data_entries));
  if (report.ok) {
    std::printf("OK: all structural invariants hold\n");
    return 0;
  }
  for (const std::string& issue : report.issues) {
    std::printf("ISSUE: %s\n", issue.c_str());
  }
  return 1;
}

constexpr char kPredictUsage[] =
    "usage: rtb_cli predict --index=FILE --buffer=B [--qx=QX --qy=QY]\n"
    "                       [--open=x|y] [--pin=L] [--data=FILE]\n"
    "  Model-predicted disk accesses per query; --data switches to the\n"
    "  data-driven query model using that file's rectangle centers.\n"
    "  --open=x (or y) leaves that axis unconstrained (partial-match\n"
    "  query); the extended model drops the open axis from the per-axis\n"
    "  probability product.\n";

// Thin wrapper over engine::PrepareTree + engine::EvaluateModel: the flags
// populate an ExperimentSpec and the engine evaluates the analytic model
// for it.
int CmdPredict(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kPredictUsage, stdout), 0;
  Args args(argc, argv, 2,
            {{"index", ""}, {"buffer", "100"}, {"qx", "0"}, {"qy", "0"},
             {"open", ""}, {"pin", "0"}, {"data", ""}});
  if (!args.ok()) return FailUsage(args.error(), kPredictUsage);

  engine::ExperimentSpec spec;
  spec.tree.index = args.Get("index");
  spec.dataset.path = args.Get("data");
  spec.pool.buffer_pages = args.GetInt("buffer");
  spec.pool.pinned_levels = static_cast<uint16_t>(args.GetInt("pin"));
  engine::QueryClassSpec cls;
  cls.query.center = args.Get("data").empty() ? "uniform" : "data";
  cls.query.x = model::AxisExtent::Fixed(args.GetDouble("qx"));
  cls.query.y = model::AxisExtent::Fixed(args.GetDouble("qy"));
  if (args.Get("open") == "x") {
    cls.query.x = model::AxisExtent::Open();
  } else if (args.Get("open") == "y") {
    cls.query.y = model::AxisExtent::Open();
  } else if (!args.Get("open").empty()) {
    return FailUsage("--open must be 'x' or 'y'", kPredictUsage);
  }
  cls.count = 1;  // Model-only: no queries are executed.
  spec.workload.classes.push_back(cls);
  if (Status s = spec.Validate(); !s.ok()) return FailStatus("spec", s);

  auto prepared = engine::PrepareTree(spec);
  if (!prepared.ok()) return FailStatus("open", prepared.status());
  auto est = engine::EvaluateModel(
      *prepared->summary, cls.query, spec.pool,
      prepared->centers == nullptr ? nullptr : prepared->centers.get());
  if (!est.ok()) return FailStatus("model", est.status());

  const uint64_t buffer = spec.pool.buffer_pages;
  const uint16_t pin = spec.pool.pinned_levels;
  const auto extent_str = [](const model::AxisExtent& ax) {
    if (ax.open) return std::string("open");
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", ax.length);
    return std::string(buf);
  };
  std::printf("query model:   %s, %s x %s\n",
              cls.query.center == "data" ? "data-driven"
                                         : cls.query.center.c_str(),
              extent_str(cls.query.x).c_str(),
              extent_str(cls.query.y).c_str());
  std::printf("nodes/query (bufferless):   %.4f\n", est->node_accesses);
  if (pin == 0) {
    std::printf("disk accesses/query (B=%llu): %.4f (continuous: %.4f)\n",
                static_cast<unsigned long long>(buffer),
                est->disk_accesses, est->disk_accesses_continuous);
  } else {
    if (!est->feasible) {
      return Fail("pinning " + std::to_string(pin) + " levels needs " +
                  std::to_string(est->pinned_pages) +
                  " pages but the buffer has only " +
                  std::to_string(buffer));
    }
    std::printf(
        "disk accesses/query (B=%llu, %u levels pinned = %llu pages): "
        "%.4f\n",
        static_cast<unsigned long long>(buffer), pin,
        static_cast<unsigned long long>(est->pinned_pages),
        est->disk_accesses);
  }
  return 0;
}

constexpr char kQueryUsage[] =
    "usage: rtb_cli query --index=FILE --buffer=B --queries=N\n"
    "                     [--qx=QX --qy=QY --open=x|y --seed=S --warmup=W]\n"
    "                     [--threads=T --shards=S --batch=N]\n"
    "                     [--async=0|1 --shared=0|1]\n"
    "                     [--data=FILE --fanout=N]\n"
    "                     [--insert-frac=F --delete-frac=F "
    "--update-batch=N]\n"
    "  Execute a random query workload through a buffer pool and report\n"
    "  measured disk accesses next to the model prediction. --threads=1\n"
    "  (default) is the paper's serial, bit-reproducible path. --batch=N\n"
    "  with N >= 2 executes N queries per level-synchronous batch (each\n"
    "  distinct page fetched once per batch); --batch=1 (default) is the\n"
    "  classic one-query-at-a-time loop. --open=x|y makes that axis of the\n"
    "  query rectangle open (partial-match: only the other axis\n"
    "  constrains). --async=1 overlaps each batch\n"
    "  window's reads with the previous window's scan (async read engine);\n"
    "  --shared=1 shares one page-ordered frontier across all workers\n"
    "  (needs --batch >= 2).\n"
    "  --data=FILE (instead of --index) bulk-loads the rectangle file into\n"
    "  an in-memory tree with --fanout. --insert-frac/--delete-frac turn\n"
    "  the stream into a mixed insert/delete/search workload (requires\n"
    "  --data and --threads=1); --update-batch=N applies updates in\n"
    "  group-by-leaf batches of N (1 = tuple-at-a-time Guttman updates).\n"
    "  --store=FILE backs the built tree with a FilePageStore at FILE;\n"
    "  --wal=1 adds a write-ahead log (STORE.wal) so every drained update\n"
    "  batch commits durably, with --wal-window=N commits per fdatasync\n"
    "  (group commit; 1 = force each commit). Requires --store.\n";

// Thin wrapper over engine::Run: the flags populate an ExperimentSpec with
// one uniform query class over the opened index (or a tree built from
// --data).
int CmdQuery(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kQueryUsage, stdout), 0;
  Args args(argc, argv, 2,
            {{"index", ""}, {"buffer", "100"}, {"queries", "100000"},
             {"qx", "0"}, {"qy", "0"}, {"open", ""},
             {"seed", "1"}, {"warmup", "10000"},
             {"threads", "1"}, {"shards", "0"}, {"batch", "1"},
             {"async", "0"}, {"shared", "0"}, {"data", ""},
             {"fanout", "100"}, {"insert-frac", "0"}, {"delete-frac", "0"},
             {"update-batch", "1"}, {"store", ""}, {"wal", "0"},
             {"wal-window", "8"}});
  if (!args.ok()) return FailUsage(args.error(), kQueryUsage);
  if (args.Get("index").empty() == args.Get("data").empty()) {
    return FailUsage("query needs exactly one of --index=FILE or "
                     "--data=FILE", kQueryUsage);
  }

  engine::ExperimentSpec spec;
  if (!args.Get("index").empty()) {
    spec.tree.index = args.Get("index");
  } else {
    spec.dataset.kind = "file";
    spec.dataset.path = args.Get("data");
    spec.tree.fanout =
        static_cast<uint32_t>(std::max<uint64_t>(2, args.GetInt("fanout")));
  }
  spec.pool.buffer_pages = args.GetInt("buffer");
  spec.pool.shards = args.GetInt("shards");
  spec.run.threads =
      std::max<uint32_t>(1, static_cast<uint32_t>(args.GetInt("threads")));
  spec.run.seed = args.GetInt("seed");
  spec.workload.warmup = args.GetInt("warmup");
  spec.workload.batch_size =
      std::max<uint64_t>(1, args.GetInt("batch"));
  spec.storage.async_io = args.GetInt("async") != 0;
  if (!args.Get("store").empty()) {
    spec.storage.backend = "file";
    spec.storage.path = args.Get("store");
  }
  spec.storage.wal.enabled = args.GetInt("wal") != 0;
  spec.storage.wal.group_commit_window =
      std::max<uint64_t>(1, args.GetInt("wal-window"));
  spec.workload.shared_frontier = args.GetInt("shared") != 0;
  spec.workload.update_batch_size =
      std::max<uint64_t>(1, args.GetInt("update-batch"));
  engine::QueryClassSpec cls;
  cls.query.x = model::AxisExtent::Fixed(args.GetDouble("qx"));
  cls.query.y = model::AxisExtent::Fixed(args.GetDouble("qy"));
  if (args.Get("open") == "x") {
    cls.query.x = model::AxisExtent::Open();
  } else if (args.Get("open") == "y") {
    cls.query.y = model::AxisExtent::Open();
  } else if (!args.Get("open").empty()) {
    return FailUsage("--open must be x or y", kQueryUsage);
  }
  cls.count = args.GetInt("queries");
  cls.insert_frac = args.GetDouble("insert-frac");
  cls.delete_frac = args.GetDouble("delete-frac");
  spec.workload.classes.push_back(cls);
  if (Status s = spec.Validate(); !s.ok()) return FailStatus("spec", s);

  auto report = engine::Run(spec);
  if (!report.ok()) return FailStatus("workload", report.status());
  const engine::ClassReport& cr = report->classes[0];

  std::printf("executed %llu queries (after %llu warm-up)\n",
              static_cast<unsigned long long>(report->total.queries),
              static_cast<unsigned long long>(spec.workload.warmup));
  if (spec.run.threads > 1) {
    std::printf("threads:   %u workers over a lock-striped pool\n",
                spec.run.threads);
    std::printf("throughput: %.0f queries/s (measured phase, %.3f s)\n",
                report->total.QueriesPerSecond(),
                report->measure_seconds);
    std::printf("hit rate:  %.2f%% (merged over shards)\n",
                100.0 * report->buffer.HitRate());
  }
  std::printf("measured:  %.4f disk accesses/query (%.4f nodes/query)\n",
              cr.run.MeanDiskAccesses(), cr.run.MeanNodeAccesses());
  if (cr.model_evaluated) {
    std::printf("predicted: %.4f disk accesses/query (LRU buffer model)\n",
                cr.predicted.disk_accesses);
  }
  if (cr.validated) {
    std::printf("mixed:     %llu searches, %llu inserts, %llu deletes "
                "(update batch %llu); tree validated\n",
                static_cast<unsigned long long>(cr.run.searches),
                static_cast<unsigned long long>(cr.run.inserts),
                static_cast<unsigned long long>(cr.run.deletes),
                static_cast<unsigned long long>(
                    spec.workload.update_batch_size));
    std::printf("writes:    %llu pages in %llu syscalls\n",
                static_cast<unsigned long long>(report->store_io.writes),
                static_cast<unsigned long long>(
                    report->store_io.WriteSyscalls()));
  }
  if (report->wal_active) {
    std::printf("wal:       %llu records (%llu bytes), %llu commits in "
                "%llu fsyncs (window %llu)\n",
                static_cast<unsigned long long>(report->store_io.wal_records),
                static_cast<unsigned long long>(report->store_io.wal_bytes),
                static_cast<unsigned long long>(report->store_io.wal_commits),
                static_cast<unsigned long long>(report->store_io.wal_fsyncs),
                static_cast<unsigned long long>(
                    spec.storage.wal.group_commit_window));
  }
  if (spec.run.threads > 1) {
    std::printf(
        "note: with --threads>1 replacement is per-shard LRU; measured hit\n"
        "      rates can deviate slightly from the serial-stream model.\n");
  }
  return 0;
}

constexpr char kRunUsage[] =
    "usage: rtb_cli run <spec.json> [--out=FILE]\n"
    "       rtb_cli run --spec=FILE [--out=FILE]\n"
    "  Execute a declarative experiment spec end to end and write the run\n"
    "  report as JSON (default RUN_<name>.json; --out=- prints only the\n"
    "  JSON document to stdout).\n";

int CmdRun(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kRunUsage, stdout), 0;
  // Accept the spec file as a positional argument or via --spec=.
  std::string spec_path;
  int first = 2;
  if (argc > 2 && std::strncmp(argv[2], "--", 2) != 0) {
    spec_path = argv[2];
    first = 3;
  }
  Args args(argc, argv, first, {{"spec", ""}, {"out", ""}});
  if (!args.ok()) return FailUsage(args.error(), kRunUsage);
  if (spec_path.empty()) spec_path = args.Get("spec");
  if (spec_path.empty()) {
    return FailUsage("run needs a spec file", kRunUsage);
  }

  auto spec = engine::ExperimentSpec::FromJsonFile(spec_path);
  if (!spec.ok()) return FailStatus(spec_path.c_str(), spec.status());
  auto report = engine::Run(*spec);
  if (!report.ok()) return FailStatus("run", report.status());

  const std::string json = report->ToJsonString();
  const std::string out = args.Get("out");
  if (out == "-") {
    std::fputs(json.c_str(), stdout);
    return 0;
  }

  std::printf("experiment: %s\n", spec->name.c_str());
  std::printf("tree: %llu nodes, height %u, %llu data entries\n",
              static_cast<unsigned long long>(report->num_nodes),
              report->height,
              static_cast<unsigned long long>(report->data_entries));
  std::printf("pool: %llu pages, %s",
              static_cast<unsigned long long>(spec->pool.buffer_pages),
              spec->pool.policy.c_str());
  if (report->pinned_pages > 0) {
    std::printf(", %u levels pinned (%llu pages)", spec->pool.pinned_levels,
                static_cast<unsigned long long>(report->pinned_pages));
  }
  std::printf("\n");
  for (const engine::ClassReport& cr : report->classes) {
    std::printf("  %-20s measured %.4f disk/query", cr.label.c_str(),
                cr.run.MeanDiskAccesses());
    if (cr.model_evaluated) {
      std::printf("  predicted %.4f", cr.predicted.disk_accesses);
    }
    std::printf("  (%llu queries)\n",
                static_cast<unsigned long long>(cr.run.queries));
  }
  std::printf("hit rate: %.2f%%  store reads: %llu\n",
              100.0 * report->buffer.HitRate(),
              static_cast<unsigned long long>(report->store_io.reads));

  const std::string dest =
      out.empty() ? "RUN_" + spec->name + ".json" : out;
  std::FILE* f = std::fopen(dest.c_str(), "w");
  if (f == nullptr) return Fail("cannot write " + dest);
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) return Fail("write failed: " + dest);
  std::printf("wrote %s\n", dest.c_str());
  return 0;
}

constexpr char kKnnUsage[] =
    "usage: rtb_cli knn --index=FILE --x=X --y=Y [--k=K] [--buffer=B]\n"
    "  Report the K objects nearest to (X, Y).\n";

int CmdKnn(int argc, char** argv) {
  if (WantsHelp(argc, argv)) return std::fputs(kKnnUsage, stdout), 0;
  Args args(argc, argv, 2,
            {{"index", ""}, {"x", "0.5"}, {"y", "0.5"}, {"k", "5"},
             {"buffer", "64"}});
  if (!args.ok()) return FailUsage(args.error(), kKnnUsage);
  auto opened = OpenIndex(args.Get("index"));
  if (!opened.ok()) return FailStatus("open", opened.status());
  auto pool = storage::BufferPool::MakeLru(opened->store.get(),
                                           args.GetInt("buffer"));
  auto tree = rtree::RTree::Open(pool.get(),
                                 rtree::RTreeConfig::WithFanout(
                                     opened->meta.fanout),
                                 opened->meta.root, opened->meta.height);
  if (!tree.ok()) return FailStatus("open tree", tree.status());
  geom::Point p{args.GetDouble("x"), args.GetDouble("y")};
  rtree::QueryStats stats;
  auto neighbors = rtree::SearchKnn(*tree, p, args.GetInt("k"), &stats);
  if (!neighbors.ok()) return FailStatus("knn", neighbors.status());
  std::printf("%zu nearest to (%g, %g), %llu nodes touched:\n",
              neighbors->size(), p.x, p.y,
              static_cast<unsigned long long>(stats.nodes_accessed));
  for (const rtree::Neighbor& n : *neighbors) {
    std::printf("  object %llu  distance %.6f  "
                "mbr=(%.4f,%.4f)-(%.4f,%.4f)\n",
                static_cast<unsigned long long>(n.id), n.distance,
                n.rect.lo.x, n.rect.lo.y, n.rect.hi.x, n.rect.hi.y);
  }
  return 0;
}

constexpr char kUsage[] =
    "usage: rtb_cli <command> [--flag=value ...]\n"
    "commands:\n"
    "  generate   write a synthetic data set as an rtb-rects file\n"
    "  build      bulk-load data into a persistent index file\n"
    "  stats      print tree shape and MBR aggregates\n"
    "  validate   check structural invariants\n"
    "  predict    model-predicted disk accesses per query\n"
    "  query      execute a query workload, measured vs predicted\n"
    "  run        execute a declarative experiment spec (JSON)\n"
    "  knn        K nearest neighbors to a point\n"
    "run 'rtb_cli <command> --help' for that command's flags\n";

int Usage(std::FILE* out) {
  std::fputs(kUsage, out);
  return out == stdout ? 0 : 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage(stderr);
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    return Usage(stdout);
  }
  if (command == "generate") return CmdGenerate(argc, argv);
  if (command == "build") return CmdBuild(argc, argv);
  if (command == "stats") return CmdStats(argc, argv);
  if (command == "validate") return CmdValidate(argc, argv);
  if (command == "predict") return CmdPredict(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "run") return CmdRun(argc, argv);
  if (command == "knn") return CmdKnn(argc, argv);
  std::fprintf(stderr, "rtb_cli: unknown command '%s'\n", command.c_str());
  return Usage(stderr);
}

}  // namespace
}  // namespace rtb::cli

int main(int argc, char** argv) { return rtb::cli::Main(argc, argv); }
