#!/usr/bin/env python3
"""Compare two benchmark reports and gate on throughput regressions.

Usage:
    tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Both files must be the same kind of report:

  * a bench report (BENCH_*.json: {"bench": ..., "configs": [...]}) — rows
    are matched by their "config" name and the gated metric is
    "queries_per_sec" ("updates_per_sec" for the update benches,
    "commits_per_sec"/"batches_per_sec" for the WAL group-commit bench);
  * an engine run report (rtb_cli run output: {"report": "rtb-run", ...}) —
    rows are matched by class "label" (plus the "totals" row) and the gated
    metric is "queries_per_second".

For every row present in both reports the script prints the throughput
delta plus any other shared numeric metrics that moved. It exits non-zero
iff some row's throughput regressed by more than --threshold (default 10%),
which makes it usable as a perf gate:

    build/bench/micro_batch_query --json=/tmp/new.json
    tools/bench_diff.py BENCH_micro_batch_query.json /tmp/new.json

Rows that exist only in the candidate are reported but never fail the
gate, so adding a configuration does not require a baseline refresh in the
same change. Rows that exist only in the *baseline* fail the gate: a bench
config that silently stopped running (or was renamed without refreshing
the baseline) would otherwise pass precisely because its regression became
invisible.
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = ("queries_per_sec", "queries_per_second",
                   "updates_per_sec", "commits_per_sec", "batches_per_sec")
# Secondary metrics worth echoing when they move by more than 1%.
INFO_DELTA = 0.01


def load_rows(path):
    """Returns (kind, {row_name: {metric: value}}) for one report file."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    rows = {}
    if isinstance(doc.get("configs"), list):
        kind = "bench:%s" % doc.get("bench", "?")
        for cfg in doc["configs"]:
            name = cfg.get("config")
            if name is not None:
                rows[name] = cfg
    elif doc.get("report") == "rtb-run":
        kind = "rtb-run:%s" % doc.get("name", "?")
        for cls in doc.get("classes", []):
            name = cls.get("label")
            if name is not None:
                rows[name] = cls
        if isinstance(doc.get("totals"), dict):
            rows["totals"] = doc["totals"]
    else:
        sys.exit("%s: not a bench report or rtb-run report" % path)
    return kind, rows


def throughput(row):
    for key in THROUGHPUT_KEYS:
        value = row.get(key)
        if isinstance(value, (int, float)) and value > 0:
            return float(value)
    return None


def main():
    parser = argparse.ArgumentParser(
        description="Diff two benchmark reports; fail on regression.")
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument(
        "--threshold", type=float, default=0.10,
        help="maximum tolerated fractional throughput drop (default 0.10)")
    args = parser.parse_args()

    base_kind, base = load_rows(args.baseline)
    cand_kind, cand = load_rows(args.candidate)
    if base_kind.split(":")[0] != cand_kind.split(":")[0]:
        sys.exit("report kinds differ: %s vs %s" % (base_kind, cand_kind))

    regressions = []
    missing = []
    print("%-36s %14s %14s %8s" % ("row", "baseline q/s", "candidate q/s",
                                   "delta"))
    for name in base:
        if name not in cand:
            missing.append(name)
            print("%-36s only in baseline  << MISSING" % name)
            continue
        b, c = throughput(base[name]), throughput(cand[name])
        if b is None and c is None:
            continue
        if b is None or c is None:
            # One side has a gateable throughput metric and the other does
            # not — a silent skip here would pass a report the gate never
            # actually examined. Name the offender and stop.
            path = args.baseline if b is None else args.candidate
            sys.exit(
                "%s: row %r has none of the recognized throughput metrics "
                "(%s) but the other report does — refresh the baseline or "
                "fix the bench output" %
                (path, name, ", ".join(THROUGHPUT_KEYS)))
        delta = (c - b) / b
        flag = ""
        if delta < -args.threshold:
            regressions.append((name, delta))
            flag = "  << REGRESSION"
        print("%-36s %14.0f %14.0f %+7.1f%%%s" % (name, b, c, 100 * delta,
                                                  flag))
        # Echo any other shared numeric metric that moved noticeably.
        for key in sorted(set(base[name]) & set(cand[name])):
            if key in THROUGHPUT_KEYS:
                continue
            bv, cv = base[name][key], cand[name][key]
            if not (isinstance(bv, (int, float)) and
                    isinstance(cv, (int, float))):
                continue
            if isinstance(bv, bool) or isinstance(cv, bool):
                continue
            if bv != 0 and abs(cv - bv) / abs(bv) > INFO_DELTA:
                print("    %-32s %14g %14g" % (key, bv, cv))
    for name in cand:
        if name not in base:
            print("%-36s only in candidate" % name)

    failed = False
    if missing:
        print("\n%d baseline row(s) missing from the candidate (a dropped "
              "bench config cannot pass the gate):" % len(missing))
        for name in missing:
            print("  %s" % name)
        failed = True
    if regressions:
        print("\n%d row(s) regressed more than %.0f%%:" %
              (len(regressions), 100 * args.threshold))
        for name, delta in regressions:
            print("  %s: %.1f%%" % (name, 100 * delta))
        failed = True
    if failed:
        return 1
    print("\nno throughput regression beyond %.0f%%" %
          (100 * args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
