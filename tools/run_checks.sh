#!/bin/sh
# Full pre-merge check matrix: a Release build running the whole test
# suite, a ThreadSanitizer build running the `concurrency`-labeled tests,
# and AddressSanitizer + UndefinedBehaviorSanitizer builds running the
# whole suite again (UBSan matters for the SIMD scan kernels: unaligned
# loads and mask arithmetic are easy places to hide UB). Builds land in
# build-checks/<name> so the developer's main build/ tree is untouched.
#
#   tools/run_checks.sh            # all four configurations
#   tools/run_checks.sh release    # just one of: release | tsan | asan | ubsan
#
# Sanitizer builds skip the benchmarks (RTB_BUILD_BENCHMARKS=OFF) — they
# only slow the build down and the bench smoke test already runs in the
# Release pass.
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
ONLY="${1:-all}"

case "$ONLY" in
  all|release|tsan|asan|ubsan) ;;
  *)
    echo "unknown configuration: $ONLY (expected release|tsan|asan|ubsan)" >&2
    exit 2
    ;;
esac

configure_and_build() {
  # $1 = build dir, then the extra cmake flags.
  dir="$1"
  shift
  cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release "$@" \
      > "$dir-configure.log" 2>&1 || { cat "$dir-configure.log"; exit 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir-build.log" 2>&1 \
      || { tail -50 "$dir-build.log"; exit 1; }
}

wants() { [ "$ONLY" = "all" ] || [ "$ONLY" = "$1" ]; }

mkdir -p "$ROOT/build-checks"

if wants release; then
  echo "==> release"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && ctest --output-on-failure)
fi

if wants tsan; then
  echo "==> tsan"
  configure_and_build "$ROOT/build-checks/tsan" \
      -DRTB_SANITIZE=thread -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/tsan" && ctest -L concurrency --output-on-failure)
fi

if wants asan; then
  echo "==> asan"
  configure_and_build "$ROOT/build-checks/asan" \
      -DRTB_SANITIZE=address -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/asan" && ctest --output-on-failure)
fi

if wants ubsan; then
  echo "==> ubsan"
  configure_and_build "$ROOT/build-checks/ubsan" \
      -DRTB_SANITIZE=undefined -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/ubsan" && ctest --output-on-failure)
fi

echo "all requested checks passed"
