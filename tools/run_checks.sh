#!/bin/sh
# Full pre-merge check matrix: a Release build running the whole test
# suite, a ThreadSanitizer build running the `concurrency`-labeled tests,
# and AddressSanitizer + UndefinedBehaviorSanitizer builds running the
# whole suite again (UBSan matters for the SIMD scan kernels: unaligned
# loads and mask arithmetic are easy places to hide UB). Builds land in
# build-checks/<name> so the developer's main build/ tree is untouched.
#
#   tools/run_checks.sh            # the full matrix
#   tools/run_checks.sh release    # one of: release | tsan | asan | ubsan | storage | async | update | durability | server | workload
#
# `storage` is a fast focused leg: it reuses the release build and runs only
# the `storage`-labeled tests (page stores, fault injection, the vectored
# read path) — the suite to iterate on when touching src/storage/.
#
# `async` reuses the release build and runs the `async`-labeled tests twice
# through the runtime seam: once with RTB_ASYNC_IO=sync pinned (the forced-
# synchronous fallback every published counter rests on) and once with the
# engine on. The TSan leg exercises the same tests under `concurrency`.
#
# `update` reuses the release build and runs the `update`-labeled tests
# (batched insert/delete execution and the write-side fault injection)
# twice: once on the default write seam (pwritev where available) and once
# with RTB_VECTORED_IO=scalar forcing one pwrite per page — the suite to
# iterate on when touching the update executor or the writeback path.
#
# `durability` reuses the release build and runs the `durability`-labeled
# tests (WAL framing, group commit, crash-point recovery) twice: on the
# default vectored write seam and with RTB_VECTORED_IO=scalar, so recovery
# holds on both writeback paths. The ctest definitions already set
# RTB_NO_FSYNC=1 — the crash model fails the process, not the kernel.
#
# `workload` runs the `workload`-labeled tests (unified query classes,
# partial-match oracle, skewed generators, spec round-trips, open-axis and
# batched model validation) on the release build and again under an ASan
# build: the shared-generator determinism case and the center-set lifetime
# case are exactly what ASan watches.
#
# `server` runs the `server`-labeled tests (wire codec, the coalescing
# admission loop, graceful shutdown, kill-during-load recovery) under both
# TSan and ASan builds: the epoll loop races real client threads in
# server_test, which is exactly the surface those sanitizers watch.
#
# The release leg also guards the perf trajectory: it re-runs
# micro_batch_query, micro_partial_match, micro_file_io, micro_async_io, micro_update_batch,
# micro_wal_commit and micro_server_qps (under RTB_NO_FSYNC=1 — committed
# baselines measure the write/serving path, not this machine's disk) and diffs them against
# the committed BENCH_*.json baselines with tools/bench_diff.py. The threshold is 25%,
# not the tool's 10% default: back-to-back identical runs swing +-15% on
# shared hardware, and the gate is there to catch structural regressions
# (an accidental extra copy on the hot path shows up as -25%..-30%), not
# to relitigate machine noise.
#
# Sanitizer builds skip the benchmarks (RTB_BUILD_BENCHMARKS=OFF) — they
# only slow the build down and the bench smoke test already runs in the
# Release pass.
set -e

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
ONLY="${1:-all}"

case "$ONLY" in
  all|release|tsan|asan|ubsan|storage|async|update|durability|server|workload) ;;
  *)
    echo "unknown configuration: $ONLY (expected release|tsan|asan|ubsan|storage|async|update|durability|server|workload)" >&2
    exit 2
    ;;
esac

configure_and_build() {
  # $1 = build dir, then the extra cmake flags.
  dir="$1"
  shift
  cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release "$@" \
      > "$dir-configure.log" 2>&1 || { cat "$dir-configure.log"; exit 1; }
  cmake --build "$dir" -j "$JOBS" > "$dir-build.log" 2>&1 \
      || { tail -50 "$dir-build.log"; exit 1; }
}

wants() { [ "$ONLY" = "all" ] || [ "$ONLY" = "$1" ]; }

mkdir -p "$ROOT/build-checks"

if wants release; then
  echo "==> release"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && ctest --output-on-failure)
  echo "==> bench diff vs committed baselines"
  for bench in micro_batch_query micro_partial_match micro_file_io \
               micro_async_io micro_update_batch micro_wal_commit \
               micro_server_qps; do
    # micro_wal_commit and micro_server_qps run with real fsync suppressed
    # so their baselines track the code path's work, not the host's disk
    # latency.
    env=""
    case "$bench" in
      micro_wal_commit|micro_server_qps) env="RTB_NO_FSYNC=1" ;;
    esac
    env $env "$ROOT/build-checks/release/bench/$bench" \
        --json="$ROOT/build-checks/release/BENCH_$bench.json" \
        > "$ROOT/build-checks/release/$bench.log" 2>&1 \
        || { cat "$ROOT/build-checks/release/$bench.log"; exit 1; }
    python3 "$ROOT/tools/bench_diff.py" --threshold 0.25 \
        "$ROOT/BENCH_$bench.json" \
        "$ROOT/build-checks/release/BENCH_$bench.json"
  done
fi

if wants storage; then
  echo "==> storage"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && ctest -L storage --output-on-failure)
fi

if wants async; then
  echo "==> async (seam off, then on)"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && \
      RTB_ASYNC_IO=sync ctest -L async --output-on-failure)
  (cd "$ROOT/build-checks/release" && \
      RTB_ASYNC_IO=1 ctest -L async --output-on-failure)
fi

if wants update; then
  echo "==> update (vectored writes, then forced-scalar)"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && ctest -L update --output-on-failure)
  (cd "$ROOT/build-checks/release" && \
      RTB_VECTORED_IO=scalar ctest -L update --output-on-failure)
fi

if wants durability; then
  echo "==> durability (vectored writes, then forced-scalar)"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && ctest -L durability --output-on-failure)
  (cd "$ROOT/build-checks/release" && \
      RTB_VECTORED_IO=scalar ctest -L durability --output-on-failure)
fi

if wants workload; then
  echo "==> workload (release, then ASan)"
  configure_and_build "$ROOT/build-checks/release"
  (cd "$ROOT/build-checks/release" && ctest -L workload --output-on-failure)
  configure_and_build "$ROOT/build-checks/asan" \
      -DRTB_SANITIZE=address -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/asan" && ctest -L workload --output-on-failure)
fi

if wants server; then
  echo "==> server (TSan, then ASan)"
  configure_and_build "$ROOT/build-checks/tsan" \
      -DRTB_SANITIZE=thread -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/tsan" && ctest -L server --output-on-failure)
  configure_and_build "$ROOT/build-checks/asan" \
      -DRTB_SANITIZE=address -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/asan" && ctest -L server --output-on-failure)
fi

if wants tsan; then
  echo "==> tsan"
  configure_and_build "$ROOT/build-checks/tsan" \
      -DRTB_SANITIZE=thread -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/tsan" && ctest -L concurrency --output-on-failure)
fi

if wants asan; then
  echo "==> asan"
  configure_and_build "$ROOT/build-checks/asan" \
      -DRTB_SANITIZE=address -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/asan" && ctest --output-on-failure)
fi

if wants ubsan; then
  echo "==> ubsan"
  configure_and_build "$ROOT/build-checks/ubsan" \
      -DRTB_SANITIZE=undefined -DRTB_BUILD_BENCHMARKS=OFF
  (cd "$ROOT/build-checks/ubsan" && ctest --output-on-failure)
fi

echo "all requested checks passed"
