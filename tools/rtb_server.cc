// rtb_server — long-running serving process for an rtb tree.
//
//   rtb_server --spec=FILE [--port=P] [--max_batch=N] [--max_wait_us=U]
//              [--max_inflight=N] [--max_queue=N] [--stats_out=FILE]
//
// Opens the spec's tree behind a buffer pool (and WAL, when the spec
// enables one), binds 127.0.0.1:PORT (PORT=0 picks an ephemeral port,
// printed on the "listening" line), and serves the pipelined binary
// protocol (src/net/protocol.h) with cross-connection batch coalescing:
// requests from all connections arriving within the admission window are
// executed as one BatchExecutor / UpdateBatchExecutor run, so the
// effective buffer hit rate tracks total server load (README "Serving").
//
// SIGINT/SIGTERM drain in-flight batches, flush replies, WAL-checkpoint
// through the pool -> wal -> store close order, write the final stats JSON
// to --stats_out (or stdout), and exit 0.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/rtb.h"

namespace rtb::server_main {
namespace {

constexpr const char kUsage[] =
    "usage: rtb_server --spec=FILE [--port=P] [--max_batch=N]\n"
    "                  [--max_wait_us=U] [--max_inflight=N] [--max_queue=N]\n"
    "                  [--stats_out=FILE]\n";

net::Server* g_server = nullptr;

void HandleSignal(int) {
  if (g_server != nullptr) g_server->RequestShutdown();
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "rtb_server: %s\n", message.c_str());
  return 1;
}

int Run(int argc, char** argv) {
  std::map<std::string, std::string> flags{
      {"spec", ""},         {"port", "0"},        {"max_batch", "256"},
      {"max_wait_us", "500"}, {"max_inflight", "1024"}, {"max_queue", "4096"},
      {"stats_out", ""}};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help") {
      std::fputs(kUsage, stdout);
      return 0;
    }
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "rtb_server: malformed argument '%s'\n%s",
                   arg.c_str(), kUsage);
      return 2;
    }
    const std::string name = arg.substr(2, eq - 2);
    if (flags.find(name) == flags.end()) {
      std::fprintf(stderr, "rtb_server: unknown flag --%s\n%s", name.c_str(),
                   kUsage);
      return 2;
    }
    flags[name] = arg.substr(eq + 1);
  }
  if (flags["spec"].empty()) {
    std::fprintf(stderr, "rtb_server: --spec is required\n%s", kUsage);
    return 2;
  }

  auto spec = engine::ExperimentSpec::FromJsonFile(flags["spec"]);
  if (!spec.ok()) return Fail("loading spec: " + spec.status().ToString());

  auto stack = net::ServingStack::Open(*spec);
  if (!stack.ok()) {
    return Fail("opening serving stack: " + stack.status().ToString());
  }

  net::ServerOptions options;
  options.port = static_cast<uint16_t>(std::strtoul(
      flags["port"].c_str(), nullptr, 10));
  options.max_batch = static_cast<uint32_t>(std::strtoul(
      flags["max_batch"].c_str(), nullptr, 10));
  options.max_wait_us = std::strtoull(flags["max_wait_us"].c_str(), nullptr,
                                      10);
  options.max_inflight = static_cast<uint32_t>(std::strtoul(
      flags["max_inflight"].c_str(), nullptr, 10));
  options.max_queue = static_cast<uint32_t>(std::strtoul(
      flags["max_queue"].c_str(), nullptr, 10));

  net::Server server(stack->get(), options);
  if (Status s = server.Start(); !s.ok()) {
    return Fail("starting server: " + s.ToString());
  }

  g_server = &server;
  struct sigaction sa{};
  sa.sa_handler = HandleSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  signal(SIGPIPE, SIG_IGN);

  std::printf("rtb_server: listening on 127.0.0.1:%u (max_batch=%u, "
              "max_wait_us=%llu, wal=%s)\n",
              server.port(), options.max_batch,
              static_cast<unsigned long long>(options.max_wait_us),
              (*stack)->wal_active() ? "on" : "off");
  std::fflush(stdout);

  const Status served = server.Serve();
  g_server = nullptr;
  if (!served.ok()) {
    // Still close the stack so a durable tree is not left unflushed.
    (*stack)->Close().ok();
    return Fail("serve loop: " + served.ToString());
  }

  const std::string stats_json = server.StatsJson().ToString() + "\n";
  if (Status s = (*stack)->Close(); !s.ok()) {
    return Fail("closing stack: " + s.ToString());
  }

  const std::string out = flags["stats_out"];
  if (out.empty() || out == "-") {
    std::fputs(stats_json.c_str(), stdout);
  } else {
    std::FILE* f = std::fopen(out.c_str(), "w");
    if (f == nullptr) return Fail("cannot write " + out);
    std::fputs(stats_json.c_str(), f);
    std::fclose(f);
  }
  return 0;
}

}  // namespace
}  // namespace rtb::server_main

int main(int argc, char** argv) {
  return rtb::server_main::Run(argc, argv);
}
